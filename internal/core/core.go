// Package core assembles the complete Aikido system (paper Figure 1): the
// AikidoVM hypervisor at the bottom, the guest process above it, the
// DynamoRIO-model DBI engine with the AikidoSD sharing detector as its
// tool, Umbra shadow memory, mirror pages, and any number of pluggable
// shared-data analyses drawn from the analysis registry (FastTrack by
// default).
//
// Analyses are selected by name (Config.Analyses) and fan out through one
// multiplexed dispatch path: a single DBI+sharing pass hosts FastTrack,
// LockSet, the atomicity checker and the communication-graph profiler
// simultaneously, amortizing the instrumented execution over every
// analysis — the framework claim of the paper's §1.1 and §7 made
// operational. core itself knows no detector by name: detector packages
// register themselves with internal/analysis, and results come back as a
// name-keyed findings map.
//
// The same entry point runs the paper's comparison configurations:
//
//   - ModeNative: plain execution, no DBI, no analysis — the normalization
//     baseline of Figure 5;
//   - ModeDBI: DynamoRIO-only overhead (no tool);
//   - ModeFastTrackFull: the selected analyses instrumenting every memory
//     access (the paper's "FastTrack" bars under the default selection);
//   - ModeAikidoFastTrack: the full Aikido stack (the "Aikido-FastTrack"
//     bars);
//   - ModeAikidoProfile: AikidoSD alone as a sharing profiler (no
//     analysis), demonstrating that Aikido hosts other shared-data
//     analyses.
package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/dbi"
	"repro/internal/fasttrack"
	"repro/internal/faultinject"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/isa"
	"repro/internal/mirror"
	"repro/internal/pagetable"
	"repro/internal/provider"
	"repro/internal/sharing"
	"repro/internal/staticanalysis"
	"repro/internal/stats"
	"repro/internal/umbra"
	"repro/internal/vm"

	// The in-tree detectors register themselves with the analysis
	// registry in init(); importing them here makes every registered
	// analysis available to any System. New detectors land by adding a
	// package and an import — no enum case, no switch.
	_ "repro/internal/atomicity"
	_ "repro/internal/commgraph"
	_ "repro/internal/lockset"
	_ "repro/internal/memcheck"
	_ "repro/internal/sampler"
	_ "repro/internal/spbags"
	_ "repro/internal/taint"
)

// Mode selects the system configuration.
type Mode uint8

// Modes.
const (
	ModeNative Mode = iota
	ModeDBI
	ModeFastTrackFull
	ModeAikidoFastTrack
	ModeAikidoProfile
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeDBI:
		return "dbi"
	case ModeFastTrackFull:
		return "FastTrack"
	case ModeAikidoFastTrack:
		return "Aikido-FastTrack"
	case ModeAikidoProfile:
		return "Aikido-profile"
	}
	return "mode?"
}

// DefaultAnalyses is the analysis selection used when Config.Analyses is
// nil: the paper's FastTrack configuration.
var DefaultAnalyses = []string{"fasttrack"}

// Config parameterizes a System.
type Config struct {
	Mode Mode
	// Analyses names the shared-data analyses to run, resolved through
	// the analysis registry ("fasttrack", "lockset", "atomicity",
	// "commgraph", "sampled:<name>", "taint", "memcheck", "spbags", plus
	// short aliases like "ft"). Multiple names multiplex onto one
	// instrumented execution. nil selects DefaultAnalyses; an empty
	// non-nil slice runs no analysis at all (instrumentation without a
	// client — the cost floor the mux-equivalence tests subtract).
	Analyses []string
	Costs    stats.CostModel
	Engine   dbi.Config

	// Paging selects AikidoVM's memory-virtualization strategy (§3.2.2):
	// shadow paging (the paper's prototype, the default) or nested paging
	// (the paper's "generally applicable" claim, with per-thread EPT
	// permission views and the mirror-alias registration it requires).
	Paging hypervisor.PagingMode
	// Switch selects how AikidoVM intercepts guest context switches
	// (§3.2.3): kernel hypercall (default), FS/GS-write trap, or
	// trampoline probe.
	Switch hypervisor.SwitchInterception
	// Provider selects the per-thread page-protection mechanism (§7.1):
	// the AikidoVM hypervisor (default), the dOS-style modified kernel,
	// or the DTHREADS-style processes-as-threads runtime. The analysis
	// results are identical across providers; the costs and transparency
	// are not.
	Provider provider.Kind

	// MaxFindings caps stored findings — races, warnings, violations,
	// flows — uniformly for the whole run (0 = each detector's default):
	// the budget is divided across the selected analyses in configuration
	// order, so "-analysis a,b" with a cap of N stores at most N findings
	// in total, not N per analysis. (It used to be forwarded whole to
	// every member, so multi-analysis runs silently stored members×N.)
	MaxFindings int

	// Dispatch selects how access events reach the selected analyses:
	// synchronously per access (DispatchInline, the default), banked in
	// per-thread rings and replayed in batches at synchronization
	// boundaries (DispatchDeferred), or additionally page-grouped and fed
	// through vectorized batch kernels (DispatchVectorized). Findings and
	// simulated counters are byte-identical in all three; see
	// DispatchDeferred for the drain points and the fallback for
	// register-dataflow analyses, and DispatchVectorized for the grouping
	// invariant.
	Dispatch DispatchMode

	// AnalysisWorkers sets how many analysis worker goroutines
	// DispatchParallel fans each drained batch out to (values < 1 mean
	// 1). Findings, counters and simulated cycles are byte-identical at
	// any worker count — sharding changes which goroutine retires a page
	// group, never what the analyses compute — so only wall-clock time
	// varies with it. Ignored by the other dispatch modes.
	AnalysisWorkers int

	// NoMirror is an ablation: instead of redirecting shared accesses to
	// mirror pages, AikidoSD unprotects the page around every shared
	// access and reprotects it afterwards (the strategy mirror pages
	// exist to avoid; §3.3.2 and the Abadi et al. comparison in §7.2).
	NoMirror bool

	// Epoch enables epoch-based re-privatization of Shared pages in the
	// Aikido modes: pages dominated by one thread (or untouched) for
	// consecutive epochs are demoted back to Private(owner)/Unused, their
	// protections re-armed through the provider and their instrumented
	// instructions flushed, so effectively-private data returns to
	// native-speed execution. The zero value keeps the paper's terminal
	// Shared state machine. See sharing.EpochPolicy and
	// sharing.DefaultEpochPolicy.
	Epoch sharing.EpochPolicy

	// Phase parameterizes DispatchPhased's hot-page classifier (Doppel-
	// style split phases; see sharing.PhasePolicy). It engages only in
	// Aikido modes with DispatchPhased and an enabled Epoch policy — the
	// classifier lives in the epoch sweep. NewSystem fills in
	// sharing.DefaultEpochPolicy and sharing.DefaultPhasePolicy for an
	// Aikido-mode DispatchPhased config that left either zero, so
	// "-dispatch phased" alone names the whole refinement.
	Phase sharing.PhasePolicy

	// Static enables the static privacy pre-pass in the Aikido modes:
	// before the engine runs, internal/staticanalysis abstractly
	// interprets the guest program, and every PC it proves can only touch
	// thread-private memory is pruned from instrumentation while
	// statically single-owner pages are pre-seeded Private(owner). Page
	// protections stay armed as the safety net, so findings are
	// byte-identical with the pass off. A pass that degrades, errors or
	// panics falls back to the unpruned dynamic-only path (see
	// Result.StaticFallback). Ignored outside the Aikido modes.
	Static bool
	// StaticVerify is the soundness tripwire mode: it implies Static and
	// additionally instruments every pruned PC with an assertion that the
	// access never observes a Shared page, hard-failing the run with a
	// *sharing.StaticTripwireError panic if one does. For equivalence
	// suites, not benchmarks — the assertion charges no cycles but does
	// defeat the pruning win.
	StaticVerify bool

	// MaxCycles caps the run's simulated cycles: a run whose clock
	// exceeds it at a scheduling-quantum boundary aborts with a typed
	// *BudgetError. The check sits on the engine's existing quantum seam
	// and only reads the clock, so it is deterministic and, when 0
	// (unlimited), entirely absent — calibrated baselines never see it.
	MaxCycles uint64
	// MaxWall caps the run's real (wall-clock) time, checked on the same
	// quantum seam; exceeding it aborts with a typed *BudgetError. Wall
	// time is inherently nondeterministic — deterministic byte-identity
	// suites must leave it 0. The runner's Options.CellDeadline fills
	// this per cell when unset.
	MaxWall time.Duration
	// Chaos is the deterministic fault-injection plan (nil = none). The
	// plan is immutable and shared across cells; each System builds its
	// own injector, so trigger state never leaks between runs. See
	// internal/faultinject and chaos.go for the seams.
	Chaos *faultinject.Plan
}

// DefaultConfig returns the standard configuration for a mode.
func DefaultConfig(m Mode) Config {
	return Config{Mode: m, Costs: stats.DefaultCosts(), Engine: dbi.DefaultConfig()}
}

// WithAnalyses returns a copy of the config selecting the named analyses.
func (c Config) WithAnalyses(names ...string) Config {
	c.Analyses = names
	return c
}

// System is one assembled simulation.
type System struct {
	Cfg     Config
	Machine *vm.Machine
	Process *guest.Process
	Clock   *stats.Clock
	Engine  *dbi.Engine

	HV     *hypervisor.Hypervisor // nil unless Aikido mode with the AikidoVM provider
	Prov   provider.Interface     // nil unless Aikido mode
	Um     *umbra.Umbra           // nil in native/dbi modes
	Mir    *mirror.Manager        // nil unless Aikido mode
	SD     *sharing.Detector      // nil unless Aikido mode
	Epochs *EpochClock            // nil unless Config.Epoch is enabled

	// Analyses are the active analyses in configuration order (empty in
	// native/dbi/profile modes). Callers needing a concrete detector's
	// extended surface (equivalence tests, taint source/sink setup)
	// type-assert the members.
	Analyses []analysis.Analysis

	// an is the dispatch stack over Analyses (nil when none run): the mux,
	// wrapped by the deferred pipeline or the inline dispatch charger when
	// the configuration asks for them, and by the chaos analysis seam
	// outermost when a plan is armed.
	an   analysis.Analysis
	pipe *pipeline // non-nil only under effective deferred dispatch

	// inj is this run's fault injector (nil without a chaos plan) and
	// wallStart the MaxWall anchor, stamped when Run starts executing.
	inj       *faultinject.Injector
	wallStart time.Time

	// static is the applied privacy summary (nil when the pass is off or
	// fell back) and staticFallback the reason the run degraded to the
	// unpruned dynamic-only path ("" when the pass applied or was off).
	static         *staticanalysis.Summary
	staticFallback string
}

// Analysis returns the active analysis registered under the (canonical)
// name, or nil.
func (s *System) Analysis(name string) analysis.Analysis {
	canon := analysis.Resolve(name)
	for _, a := range s.Analyses {
		if a.Name() == canon {
			return a
		}
	}
	return nil
}

// newAnalyses instantiates the configured analyses, the mux that fans the
// instrumented execution out to them, and the configured dispatch layer
// over the mux. It must run after shadow memory is attached (factories may
// require Env.Umbra). The findings cap is applied through the mux so its
// per-run budget division governs multi-analysis selections.
func (s *System) newAnalyses() (analysis.Analysis, error) {
	names := s.Cfg.Analyses
	if names == nil {
		names = DefaultAnalyses
	}
	if len(names) == 0 {
		return nil, nil
	}
	env := analysis.Env{Clock: s.Clock, Costs: s.Cfg.Costs, Process: s.Process, Umbra: s.Um}
	as, err := analysis.NewAll(names, env)
	if err != nil {
		return nil, err
	}
	s.Analyses = as
	m := analysis.NewMux(as...)
	if max := s.Cfg.MaxFindings; max != 0 {
		m.SetMaxFindings(max)
	}
	an := s.wrapDispatch(m)
	if s.inj != nil && an != nil {
		// The chaos analysis seam wraps OUTERMOST — above the deferred
		// pipeline — so its crossing counts (and therefore where a
		// trigger lands) are identical under inline and deferred
		// dispatch: it observes the access stream as the instrumented
		// hot paths emit it, before any banking.
		an = &chaosAnalysis{Analysis: an, inj: s.inj}
	}
	return an, nil
}

// NewSystem loads prog and assembles the configured stack.
func NewSystem(prog *isa.Program, cfg Config) (*System, error) {
	if cfg.Dispatch == DispatchPhased &&
		(cfg.Mode == ModeAikidoFastTrack || cfg.Mode == ModeAikidoProfile) {
		// Phased dispatch is meaningless without the epoch sweep (the
		// classifier's only home) and a split policy; fill the calibrated
		// defaults so "-dispatch phased" alone names the refinement.
		if !cfg.Epoch.Enabled() {
			cfg.Epoch = sharing.DefaultEpochPolicy()
		}
		if !cfg.Phase.Enabled() {
			cfg.Phase = sharing.DefaultPhasePolicy()
		}
	}
	m := vm.NewMachine()
	p, err := guest.NewProcess(m, prog)
	if err != nil {
		return nil, err
	}
	clock := &stats.Clock{}
	s := &System{Cfg: cfg, Machine: m, Process: p, Clock: clock}
	// One injector per System: the chaos plan is immutable and shared,
	// the trigger state is this run's own. Stall faults charge the
	// simulated clock, so a budgeted run surfaces them as *BudgetError.
	s.inj = cfg.Chaos.NewInjector(clock.Charge)

	switch cfg.Mode {
	case ModeNative:
		ecfg := cfg.Engine
		ecfg.ChargeDBI = false
		s.Engine = dbi.New(p, nil, nil, clock, cfg.Costs, ecfg)

	case ModeDBI:
		s.Engine = dbi.New(p, nil, nil, clock, cfg.Costs, cfg.Engine)

	case ModeFastTrackFull:
		s.Um = umbra.Attach(p, clock, cfg.Costs)
		if s.an, err = s.newAnalyses(); err != nil {
			return nil, err
		}
		tool := &fullTool{um: s.Um, an: s.an}
		s.Engine = dbi.New(p, nil, tool, clock, cfg.Costs, cfg.Engine)

	case ModeAikidoFastTrack, ModeAikidoProfile:
		switch cfg.Provider {
		case provider.DOS:
			s.Prov = provider.NewDOS(p, clock, cfg.Costs)
		case provider.Dthreads:
			s.Prov = provider.NewDthreads(p, clock, cfg.Costs)
		default:
			if cfg.Paging == hypervisor.NestedPaging {
				s.HV = hypervisor.NewNested(m, p.PT)
			} else {
				s.HV = hypervisor.New(m, p.PT)
			}
			s.HV.SetSwitchInterception(cfg.Switch)
			s.Prov = provider.NewAikidoVM(p, s.HV, clock, cfg.Costs)
		}
		if s.inj != nil {
			s.Prov = &chaosProvider{Interface: s.Prov, inj: s.inj}
		}
		p.SetBus(&kernelBus{prov: s.Prov})
		s.Um = umbra.Attach(p, clock, cfg.Costs)
		s.Mir = mirror.Attach(p)
		var client sharing.Analysis
		if cfg.Mode == ModeAikidoFastTrack {
			if s.an, err = s.newAnalyses(); err != nil {
				return nil, err
			}
			if s.an != nil {
				client = s.an
			}
		}
		s.SD = sharing.Attach(p, s.Prov, s.Um, s.Mir, client, clock, cfg.Costs)
		if cfg.NoMirror {
			s.SD.DisableMirror()
		}
		s.Engine = dbi.New(p, s.Prov, s.SD, clock, cfg.Costs, cfg.Engine)
		s.SD.SetEngine(s.Engine)
		s.Engine.OnFault = s.SD.HandleFault
		s.Engine.RuntimeTouch = s.SD.TouchCode
		if cfg.Static || cfg.StaticVerify {
			s.applyStatic(cfg.StaticVerify)
		}
		if cfg.Epoch.Enabled() {
			s.SD.EnableEpochs(cfg.Epoch)
			sweep := s.SD.EpochSweep
			if s.pipe != nil && s.pipe.phased {
				// Reconcile-then-sweep: the sweep is where pages flip
				// phase, so every banked delta must reconcile into
				// canonical shadow state first — a record banked under
				// split must never be delivered after its page joins (or
				// demotes). The drain is a no-op when nothing is banked.
				pipe, sd := s.pipe, s.SD
				sweep = func() {
					pipe.drain()
					sd.EpochSweep()
				}
			}
			s.Epochs = newEpochClock(clock, cfg.Epoch.Interval, sweep)
			tick := s.Epochs.MaybeTick
			if s.pipe != nil && !s.pipe.phased {
				// An armed epoch clock reads the simulated clock between
				// accesses. Banked records carry analysis charges that
				// have not landed yet, so a non-empty ring must drain
				// before every boundary check for the clock values the
				// check observes — and therefore the tick points — to be
				// identical to inline dispatch. Epoch runs consequently
				// drain per instrumented access: correctness keeps
				// byte-identity, at the price of the batching win.
				//
				// Phased dispatch deliberately skips this composition:
				// joined pages deliver (and charge) inline, so non-hot
				// runs tick identically to inline anyway, while split
				// pages' delayed charges are allowed to shift epoch
				// boundaries — findings stay identical (the reconcile
				// preserves order), cycles are the BENCH_9 win.
				pipe, epochs := s.pipe, s.Epochs
				tick = func() {
					pipe.drain()
					epochs.MaybeTick()
				}
			}
			s.SD.SetEpochTicker(tick)
			if s.pipe != nil && s.pipe.phased && cfg.Phase.Enabled() {
				// The banker the detector routes split-page accesses to:
				// the chaos analysis wrapper when a plan is armed (so the
				// analysis seam's crossing counts include banked
				// accesses), the pipeline itself otherwise.
				banker := sharing.PhaseBanker(s.pipe)
				if cb, ok := s.an.(sharing.PhaseBanker); ok {
					banker = cb
				}
				s.SD.EnablePhases(cfg.Phase, banker)
			}
		}

	default:
		return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}

	s.wireHooks()
	s.armQuantumCheck()
	return s, nil
}

// applyStatic runs the static privacy pre-pass and applies its summary to
// the sharing detector. It never fails the run: every rung of the
// degradation ladder — a retire observer forcing the unpruned path, an
// injected static-seam fault, an analysis error on the program, or a
// panic inside the pass itself — records a fallback reason and leaves
// the dynamic-only configuration untouched.
func (s *System) applyStatic(verify bool) {
	// Retire observers (the taint tracker's register-dataflow half) watch
	// every retired instruction, including ones the pass would prune; a
	// pruned PC would silently vanish from their stream. Selecting one
	// forces the unpruned path.
	for _, a := range s.Analyses {
		if _, ok := asRetireObserver(a); ok {
			s.staticFallback = "retire observer active (unpruned path)"
			return
		}
	}
	defer func() {
		if r := recover(); r != nil {
			s.static = nil
			s.staticFallback = fmt.Sprintf("static pass panic: %v", r)
		}
	}()
	if err := s.inj.Fire(faultinject.SeamStatic); err != nil {
		s.staticFallback = fmt.Sprintf("static seam fault: %v", err)
		return
	}
	sum, err := staticanalysis.Analyze(s.Process.Prog)
	if err != nil {
		s.staticFallback = fmt.Sprintf("static pass error: %v", err)
		return
	}
	s.SD.ApplyStaticSummary(sum, verify)
	s.static = sum
}

// retireObserver is the optional surface an analysis implements to watch
// every retired instruction (the taint tracker's register-dataflow half).
// Observers are wired directly, not through the mux: most analyses do not
// want a per-instruction callback, and the common case must stay free.
type retireObserver interface {
	OnRetire(t *guest.Thread, pc isa.PC, in isa.Instr)
}

// analysisWrapper is the surface wrapper analyses (the sampler) expose so
// optional interfaces of the wrapped analysis stay reachable.
type analysisWrapper interface {
	Inner() analysis.Analysis
}

// asRetireObserver unwraps a (possibly wrapped) analysis down to a retire
// observer. Register dataflow is never sampled away — like
// synchronization, it must stay sound for the wrapped analysis's state to
// mean anything — so the observer is the innermost analysis itself.
func asRetireObserver(a analysis.Analysis) (retireObserver, bool) {
	for {
		if ro, ok := a.(retireObserver); ok {
			return ro, true
		}
		w, ok := a.(analysisWrapper)
		if !ok {
			return nil, false
		}
		a = w.Inner()
	}
}

// wireHooks connects guest events to the hypervisor (context switches) and
// the analyses (synchronization happens-before edges), charging their
// costs.
func (s *System) wireHooks() {
	p := s.Process
	costs := s.Cfg.Costs
	clock := s.Clock

	p.Hooks.ContextSwitch = func(old, new guest.TID) {
		clock.Charge(costs.ContextSwitch)
		if s.Prov != nil {
			// The provider charges its own switch cost on top of the
			// guest's: the hypervisor's interception VM exit plus
			// translation-view switch (§3.2.3), the dOS root write, or
			// the DTHREADS process switch.
			s.Prov.ContextSwitch(old, new)
		}
	}
	// Live-thread tracking feeds the contention model of both the
	// analysis (metadata lines) and the mirror redirect path. The main
	// thread already exists (its ThreadStarted fired inside NewProcess,
	// before these hooks were installed), so the count starts at 1.
	live := 1
	an := s.an
	if an != nil {
		an.AddThread(1) // the main thread, for the same reason
	}
	p.Hooks.ThreadStarted = func(t *guest.Thread, creator guest.TID) {
		live++
		if s.Prov != nil {
			s.Prov.ThreadStarted(t.ID, creator)
		}
		if an != nil {
			an.AddThread(1)
			if creator != guest.NoTID {
				an.OnFork(creator, t.ID)
			}
		}
	}
	p.Hooks.ThreadExited = func(t *guest.Thread) {
		live--
		if s.Prov != nil {
			s.Prov.ThreadExited(t.ID)
		}
		if an != nil {
			an.OnExit(t.ID)
			an.AddThread(-1)
		}
	}
	if s.Prov != nil {
		p.Hooks.Syscall = func(t *guest.Thread, num int64) {
			s.Prov.OnSyscall(t.ID, num)
		}
	}
	if s.SD != nil {
		s.SD.SetLiveThreads(func() int { return live })
	}
	if an != nil {
		p.Hooks.LockAcquired = func(t *guest.Thread, l int64) { an.OnAcquire(t.ID, l) }
		p.Hooks.LockReleased = func(t *guest.Thread, l int64) { an.OnRelease(t.ID, l) }
		p.Hooks.ThreadJoined = func(joiner guest.TID, child *guest.Thread) {
			an.OnJoin(joiner, child.ID)
		}
		p.Hooks.BarrierWait = func(t *guest.Thread, id int64) { an.OnBarrierWait(t.ID, id) }
		p.Hooks.BarrierRelease = func(t *guest.Thread, id int64) { an.OnBarrierRelease(t.ID, id) }
	}
	// Wire retire observers (taint's register half) without taxing the
	// common case: the engine hook is installed only when some analysis
	// asks for it.
	var observers []retireObserver
	for _, a := range s.Analyses {
		if ro, ok := asRetireObserver(a); ok {
			observers = append(observers, ro)
		}
	}
	if len(observers) == 1 {
		s.Engine.OnRetire = observers[0].OnRetire
	} else if len(observers) > 1 {
		s.Engine.OnRetire = func(t *guest.Thread, pc isa.PC, in isa.Instr) {
			for _, ro := range observers {
				ro.OnRetire(t, pc, in)
			}
		}
	}
}

// fullTool is the conservative baseline: analysis instrumentation on every
// memory access (the paper's "FastTrack" configuration when the analysis is
// FastTrack), with Umbra providing the metadata translation.
type fullTool struct {
	um *umbra.Umbra
	an analysis.Analysis
}

// Instrument implements dbi.Tool.
func (f *fullTool) Instrument(pc isa.PC, in isa.Instr) *dbi.Plan {
	if !in.Op.IsMemRef() {
		return nil
	}
	return &dbi.Plan{PreAccess: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) uint64 {
		f.um.Translate(tid, addr) // metadata mapping, charges cycles
		if f.an != nil {
			f.an.OnAccess(tid, pc, addr, size, write)
		}
		return addr
	}}
}

// kernelBus adapts the protection provider to the guest kernel's memory
// path. The provider resolves kernel accesses to protected pages its own
// way — AikidoVM emulates the access (§3.2.6), the dOS kernel checks its
// ownership table, the DTHREADS shim unprotects around it — and charges the
// cost internally.
type kernelBus struct {
	prov provider.Interface
}

func (b *kernelBus) Load(tid guest.TID, addr uint64, size uint8, user bool) (uint64, *pagetable.Fault) {
	v, fault := b.prov.Load(tid, addr, size, user)
	if fault != nil {
		return 0, &pagetable.Fault{Addr: fault.Addr, Access: fault.Access, Unmapped: fault.Unmapped}
	}
	return v, nil
}

func (b *kernelBus) Store(tid guest.TID, addr uint64, size uint8, val uint64, user bool) *pagetable.Fault {
	fault := b.prov.Store(tid, addr, size, val, user)
	if fault != nil {
		return &pagetable.Fault{Addr: fault.Addr, Access: fault.Access, Unmapped: fault.Unmapped}
	}
	return nil
}

// Result is the outcome of one run with every layer's statistics.
type Result struct {
	Mode     Mode
	Cycles   uint64
	ExitCode int64
	Console  string

	Engine dbi.Counters
	HV     hypervisor.Stats
	Prov   provider.Stats
	Umbra  umbra.Stats
	SD     sharing.Counters

	// Findings maps each selected analysis's canonical name to its
	// findings. Typed detail (races with PCs, lockset warnings, …) is
	// recovered by asserting to the producing package's findings type;
	// the deprecated accessors in compat.go do exactly that for the
	// pre-registry result fields.
	Findings map[string]analysis.Findings

	GuestContextSwitches uint64
	GuestSyscalls        uint64

	// EpochTicks counts epoch boundaries fired by the re-privatization
	// clock (0 when Config.Epoch is disabled; demotion detail lives in
	// SD.EpochSweeps / SD.PagesDemoted* / SD.PagesReshared).
	EpochTicks uint64

	// DeferredDrains and DeferredRecords describe the deferred dispatch
	// pipeline: drain batches replayed and access records banked.
	// DeferredFallbacks counts drains that failed (injected drain-seam
	// errors) and degraded the pipeline to inline delivery for the rest
	// of the run. DeferredGroups counts page groups cut by vectorized
	// dispatch, and VectorCoalesced/VectorFallbacks sum what the
	// vectorized kernels did with their records (run-length retired vs
	// punted to the scalar hook). All six are 0 under inline dispatch.
	DeferredDrains    uint64
	DeferredRecords   uint64
	DeferredFallbacks uint64
	DeferredGroups    uint64
	VectorCoalesced   uint64
	VectorFallbacks   uint64

	// ParallelDrains counts drains fanned out across the analysis worker
	// pool, and ParallelSplits the page-straddling access records split
	// at a 4 KiB boundary before fan-out. Both are 0 outside
	// DispatchParallel and independent of Config.AnalysisWorkers; along
	// with the six counters above they are the only Result fields that
	// may differ between dispatch modes.
	ParallelDrains uint64
	ParallelSplits uint64

	// PhaseReconciles counts split-phase reconciliation merges and
	// PhaseBanked the access records banked through per-thread delta
	// rings while their page was split (DispatchPhased; page-level flip
	// counts live in SD.PagesSplit / SD.PagesJoined). Both are 0 in every
	// other dispatch mode and on workloads that never go hot — which is
	// exactly the phased byte-identity condition the equivalence tests
	// assert.
	PhaseReconciles uint64
	PhaseBanked     uint64

	// Static is the applied privacy summary (nil when Config.Static was
	// off or the pass fell back) and StaticFallback the degradation
	// reason when it did; runtime refutation counts live in
	// SD.StaticTripwires and the pruning/pre-seed totals in
	// SD.PCsStaticallyPruned / SD.PagesPreSeeded.
	Static         *staticanalysis.Summary
	StaticFallback string
}

// Run executes the assembled system to completion.
func (s *System) Run() (*Result, error) {
	if s.Cfg.MaxWall > 0 {
		// Anchor the wall budget at execution start, not assembly time.
		s.wallStart = time.Now() //detlint:ok wall budget anchor; only read by the MaxWall safety check
	}
	if s.pipe != nil {
		// Leak guard: stop the parallel worker goroutines even when the
		// engine errors or a contained panic unwinds through Run.
		// Idempotent, and a no-op outside parallel dispatch.
		defer s.pipe.stopParallel()
	}
	eres, err := s.Engine.Run()
	if err != nil {
		return nil, err
	}
	if s.pipe != nil {
		// End-of-run drain point, BEFORE the cycle total is captured:
		// records banked between the last sync event and process exit
		// (SysExit fires no thread-exit hook) still carry analysis
		// charges, and inline dispatch landed those before the engine
		// stopped. Under parallel dispatch this also folds the shard
		// replicas back into the primary stack, so the Report() and
		// vector-stat reads below see the whole run. eres.Cycles was
		// snapshotted pre-drain, so the total is re-read from the shared
		// clock below.
		s.pipe.finalize()
		eres.Cycles = s.Clock.Cycles()
	}
	r := &Result{
		Mode:                 s.Cfg.Mode,
		Cycles:               eres.Cycles,
		ExitCode:             eres.ExitCode,
		Console:              eres.Console,
		Engine:               eres.Counters,
		GuestContextSwitches: s.Process.ContextSwitches,
		GuestSyscalls:        s.Process.SyscallCount,
	}
	if s.HV != nil {
		r.HV = s.HV.Stats
	}
	if s.Prov != nil {
		r.Prov = s.Prov.Overhead()
	}
	if s.Um != nil {
		r.Umbra = s.Um.Stats
	}
	if s.SD != nil {
		r.SD = s.SD.C
	}
	r.Static = s.static
	r.StaticFallback = s.staticFallback
	if s.Epochs != nil {
		r.EpochTicks = s.Epochs.Ticks
	}
	if s.pipe != nil {
		r.DeferredDrains = s.pipe.drains
		r.DeferredRecords = s.pipe.records
		r.DeferredFallbacks = s.pipe.fallbacks
		r.DeferredGroups = s.pipe.groupsN
		r.ParallelDrains = s.pipe.pdrains
		r.ParallelSplits = s.pipe.psplits
		r.PhaseReconciles = s.pipe.preconciles
		r.PhaseBanked = s.pipe.precs
		for _, a := range s.Analyses {
			if vs, ok := a.(analysis.VectorStatser); ok {
				st := vs.VectorStats()
				r.VectorCoalesced += st.Coalesced
				r.VectorFallbacks += st.Fallbacks
			}
		}
	}
	if len(s.Analyses) > 0 {
		r.Findings = make(map[string]analysis.Findings, len(s.Analyses))
		for _, a := range s.Analyses {
			r.Findings[a.Name()] = a.Report()
		}
	}
	return r, nil
}

// Run is the one-shot convenience: assemble and execute prog under cfg.
func Run(prog *isa.Program, cfg Config) (*Result, error) {
	s, err := NewSystem(prog, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// TallyCounters implements stats.RunCounters, exposing the aggregate
// counters the concurrent runner's per-worker tallies sum over.
func (r *Result) TallyCounters() (cycles, instructions, memRefs, instrumented, shared, races uint64) {
	return r.Cycles, r.Engine.Instructions, r.Engine.MemRefs,
		r.Engine.InstrumentedExecs, r.SD.SharedPageAccesses, uint64(len(fasttrack.RacesIn(r.Findings)))
}

// SharedAccessFraction is Figure 6's metric: the fraction of all memory-
// referencing instruction executions that targeted shared pages.
func (r *Result) SharedAccessFraction() float64 {
	if r.Engine.MemRefs == 0 {
		return 0
	}
	return float64(r.SD.SharedPageAccesses) / float64(r.Engine.MemRefs)
}

// Slowdown computes r's slowdown relative to a baseline (native) run.
func (r *Result) Slowdown(native *Result) float64 {
	return stats.Ratio(r.Cycles, native.Cycles)
}

// Package core assembles the complete Aikido system (paper Figure 1): the
// AikidoVM hypervisor at the bottom, the guest process above it, the
// DynamoRIO-model DBI engine with the AikidoSD sharing detector as its
// tool, Umbra shadow memory, mirror pages, and a pluggable shared-data
// analysis (FastTrack by default).
//
// The same entry point runs the paper's comparison configurations:
//
//   - ModeNative: plain execution, no DBI, no analysis — the normalization
//     baseline of Figure 5;
//   - ModeDBI: DynamoRIO-only overhead (no tool);
//   - ModeFastTrackFull: FastTrack instrumenting every memory access (the
//     paper's "FastTrack" bars);
//   - ModeAikidoFastTrack: the full Aikido stack (the "Aikido-FastTrack"
//     bars);
//   - ModeAikidoProfile: AikidoSD alone as a sharing profiler (no
//     analysis), demonstrating that Aikido hosts other shared-data
//     analyses.
package core

import (
	"fmt"

	"repro/internal/atomicity"
	"repro/internal/commgraph"
	"repro/internal/dbi"
	"repro/internal/fasttrack"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/isa"
	"repro/internal/lockset"
	"repro/internal/mirror"
	"repro/internal/pagetable"
	"repro/internal/provider"
	"repro/internal/sampler"
	"repro/internal/sharing"
	"repro/internal/stats"
	"repro/internal/umbra"
	"repro/internal/vm"
)

// Mode selects the system configuration.
type Mode uint8

// Modes.
const (
	ModeNative Mode = iota
	ModeDBI
	ModeFastTrackFull
	ModeAikidoFastTrack
	ModeAikidoProfile
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeDBI:
		return "dbi"
	case ModeFastTrackFull:
		return "FastTrack"
	case ModeAikidoFastTrack:
		return "Aikido-FastTrack"
	case ModeAikidoProfile:
		return "Aikido-profile"
	}
	return "mode?"
}

// AnalysisKind selects the shared-data analysis plugged into the framework.
type AnalysisKind uint8

// Analyses.
const (
	// AnalysisFastTrack is the happens-before race detector of §4.
	AnalysisFastTrack AnalysisKind = iota
	// AnalysisLockSet is the Eraser locking-discipline checker (§7.3),
	// demonstrating that Aikido hosts analyses other than FastTrack.
	AnalysisLockSet
	// AnalysisSampledFastTrack is the LiteRace-style sampling baseline
	// (§1, §7.3): fast, but trades false negatives for speed — the
	// trade-off Aikido exists to avoid.
	AnalysisSampledFastTrack
	// AnalysisAtomicity is the AVIO-style atomicity-violation checker
	// (reference [26]), the other class of shared-data analyses the
	// paper's introduction motivates.
	AnalysisAtomicity
	// AnalysisCommGraph is the thread-communication-graph profiler — a
	// pure sharing-structure analysis for which Aikido's filtering is
	// lossless (private accesses carry no communication).
	AnalysisCommGraph
)

// analysis is the seam every pluggable shared-data analysis implements:
// access events (full or shared-only) plus the guest synchronization hooks.
type analysis interface {
	sharing.Analysis
	OnAccess(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool)
	OnAcquire(tid guest.TID, lock int64)
	OnRelease(tid guest.TID, lock int64)
	OnFork(parent, child guest.TID)
	OnJoin(joiner, child guest.TID)
	OnBarrierWait(tid guest.TID, id int64)
	OnBarrierRelease(tid guest.TID, id int64)
	AddThread(delta int)
}

// Config parameterizes a System.
type Config struct {
	Mode     Mode
	Analysis AnalysisKind
	Costs    stats.CostModel
	Engine   dbi.Config

	// Paging selects AikidoVM's memory-virtualization strategy (§3.2.2):
	// shadow paging (the paper's prototype, the default) or nested paging
	// (the paper's "generally applicable" claim, with per-thread EPT
	// permission views and the mirror-alias registration it requires).
	Paging hypervisor.PagingMode
	// Switch selects how AikidoVM intercepts guest context switches
	// (§3.2.3): kernel hypercall (default), FS/GS-write trap, or
	// trampoline probe.
	Switch hypervisor.SwitchInterception
	// Provider selects the per-thread page-protection mechanism (§7.1):
	// the AikidoVM hypervisor (default), the dOS-style modified kernel,
	// or the DTHREADS-style processes-as-threads runtime. The analysis
	// results are identical across providers; the costs and transparency
	// are not.
	Provider provider.Kind

	// MaxRaces caps stored race reports (0 = detector default).
	MaxRaces int

	// NoMirror is an ablation: instead of redirecting shared accesses to
	// mirror pages, AikidoSD unprotects the page around every shared
	// access and reprotects it afterwards (the strategy mirror pages
	// exist to avoid; §3.3.2 and the Abadi et al. comparison in §7.2).
	NoMirror bool
}

// DefaultConfig returns the standard configuration for a mode.
func DefaultConfig(m Mode) Config {
	return Config{Mode: m, Costs: stats.DefaultCosts(), Engine: dbi.DefaultConfig()}
}

// System is one assembled simulation.
type System struct {
	Cfg     Config
	Machine *vm.Machine
	Process *guest.Process
	Clock   *stats.Clock
	Engine  *dbi.Engine

	HV      *hypervisor.Hypervisor // nil unless Aikido mode with the AikidoVM provider
	Prov    provider.Interface     // nil unless Aikido mode
	Um      *umbra.Umbra           // nil in native/dbi modes
	Mir     *mirror.Manager        // nil unless Aikido mode
	SD      *sharing.Detector      // nil unless Aikido mode
	FT      *fasttrack.Detector    // nil unless a FastTrack-based analysis runs
	LS      *lockset.Detector      // nil unless the LockSet analysis runs
	Sampler *sampler.Detector      // nil unless the sampling analysis runs
	Atom    *atomicity.Detector    // nil unless the atomicity analysis runs
	CG      *commgraph.Analysis    // nil unless the communication-graph analysis runs

	an analysis // the active analysis (nil in native/dbi/profile modes)
}

// newAnalysis instantiates the configured analysis.
func (s *System) newAnalysis() analysis {
	switch s.Cfg.Analysis {
	case AnalysisLockSet:
		s.LS = lockset.New(s.Clock, s.Cfg.Costs)
		return s.LS
	case AnalysisSampledFastTrack:
		s.Sampler = sampler.New(s.Clock, s.Cfg.Costs, sampler.DefaultConfig())
		s.FT = s.Sampler.FT
		return s.Sampler
	case AnalysisAtomicity:
		s.Atom = atomicity.New(s.Clock, s.Cfg.Costs)
		return s.Atom
	case AnalysisCommGraph:
		s.CG = commgraph.New(s.Clock, s.Cfg.Costs)
		return s.CG
	default:
		s.FT = fasttrack.New(s.Clock, s.Cfg.Costs)
		return s.FT
	}
}

// NewSystem loads prog and assembles the configured stack.
func NewSystem(prog *isa.Program, cfg Config) (*System, error) {
	m := vm.NewMachine()
	p, err := guest.NewProcess(m, prog)
	if err != nil {
		return nil, err
	}
	clock := &stats.Clock{}
	s := &System{Cfg: cfg, Machine: m, Process: p, Clock: clock}

	switch cfg.Mode {
	case ModeNative:
		ecfg := cfg.Engine
		ecfg.ChargeDBI = false
		s.Engine = dbi.New(p, nil, nil, clock, cfg.Costs, ecfg)

	case ModeDBI:
		s.Engine = dbi.New(p, nil, nil, clock, cfg.Costs, cfg.Engine)

	case ModeFastTrackFull:
		s.Um = umbra.Attach(p, clock, cfg.Costs)
		s.an = s.newAnalysis()
		tool := &fullTool{um: s.Um, an: s.an}
		s.Engine = dbi.New(p, nil, tool, clock, cfg.Costs, cfg.Engine)

	case ModeAikidoFastTrack, ModeAikidoProfile:
		switch cfg.Provider {
		case provider.DOS:
			s.Prov = provider.NewDOS(p, clock, cfg.Costs)
		case provider.Dthreads:
			s.Prov = provider.NewDthreads(p, clock, cfg.Costs)
		default:
			if cfg.Paging == hypervisor.NestedPaging {
				s.HV = hypervisor.NewNested(m, p.PT)
			} else {
				s.HV = hypervisor.New(m, p.PT)
			}
			s.HV.SetSwitchInterception(cfg.Switch)
			s.Prov = provider.NewAikidoVM(p, s.HV, clock, cfg.Costs)
		}
		p.SetBus(&kernelBus{prov: s.Prov})
		s.Um = umbra.Attach(p, clock, cfg.Costs)
		s.Mir = mirror.Attach(p)
		var client sharing.Analysis
		if cfg.Mode == ModeAikidoFastTrack {
			s.an = s.newAnalysis()
			client = s.an
		}
		s.SD = sharing.Attach(p, s.Prov, s.Um, s.Mir, client, clock, cfg.Costs)
		if cfg.NoMirror {
			s.SD.DisableMirror()
		}
		s.Engine = dbi.New(p, s.Prov, s.SD, clock, cfg.Costs, cfg.Engine)
		s.SD.SetEngine(s.Engine)
		s.Engine.OnFault = s.SD.HandleFault
		s.Engine.RuntimeTouch = s.SD.TouchCode

	default:
		return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}

	if s.FT != nil && cfg.MaxRaces > 0 {
		s.FT.MaxRaces = cfg.MaxRaces
	}
	s.wireHooks()
	return s, nil
}

// wireHooks connects guest events to the hypervisor (context switches) and
// the analysis (synchronization happens-before edges), charging their costs.
func (s *System) wireHooks() {
	p := s.Process
	costs := s.Cfg.Costs
	clock := s.Clock

	p.Hooks.ContextSwitch = func(old, new guest.TID) {
		clock.Charge(costs.ContextSwitch)
		if s.Prov != nil {
			// The provider charges its own switch cost on top of the
			// guest's: the hypervisor's interception VM exit plus
			// translation-view switch (§3.2.3), the dOS root write, or
			// the DTHREADS process switch.
			s.Prov.ContextSwitch(old, new)
		}
	}
	// Live-thread tracking feeds the contention model of both the
	// analysis (metadata lines) and the mirror redirect path. The main
	// thread already exists (its ThreadStarted fired inside NewProcess,
	// before these hooks were installed), so the count starts at 1.
	live := 1
	an := s.an
	if an != nil {
		an.AddThread(1) // the main thread, for the same reason
	}
	p.Hooks.ThreadStarted = func(t *guest.Thread, creator guest.TID) {
		live++
		if s.Prov != nil {
			s.Prov.ThreadStarted(t.ID, creator)
		}
		if an != nil {
			an.AddThread(1)
			if creator != guest.NoTID {
				an.OnFork(creator, t.ID)
			}
		}
	}
	p.Hooks.ThreadExited = func(t *guest.Thread) {
		live--
		if s.Prov != nil {
			s.Prov.ThreadExited(t.ID)
		}
		if an != nil {
			an.AddThread(-1)
		}
	}
	if s.Prov != nil {
		p.Hooks.Syscall = func(t *guest.Thread, num int64) {
			s.Prov.OnSyscall(t.ID, num)
		}
	}
	if s.SD != nil {
		s.SD.SetLiveThreads(func() int { return live })
	}
	if an != nil {
		p.Hooks.LockAcquired = func(t *guest.Thread, l int64) { an.OnAcquire(t.ID, l) }
		p.Hooks.LockReleased = func(t *guest.Thread, l int64) { an.OnRelease(t.ID, l) }
		p.Hooks.ThreadJoined = func(joiner guest.TID, child *guest.Thread) {
			an.OnJoin(joiner, child.ID)
		}
		p.Hooks.BarrierWait = func(t *guest.Thread, id int64) { an.OnBarrierWait(t.ID, id) }
		p.Hooks.BarrierRelease = func(t *guest.Thread, id int64) { an.OnBarrierRelease(t.ID, id) }
	}
}

// fullTool is the conservative baseline: analysis instrumentation on every
// memory access (the paper's "FastTrack" configuration when the analysis is
// FastTrack), with Umbra providing the metadata translation.
type fullTool struct {
	um *umbra.Umbra
	an analysis
}

// Instrument implements dbi.Tool.
func (f *fullTool) Instrument(pc isa.PC, in isa.Instr) *dbi.Plan {
	if !in.Op.IsMemRef() {
		return nil
	}
	return &dbi.Plan{PreAccess: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) uint64 {
		f.um.Translate(tid, addr) // metadata mapping, charges cycles
		f.an.OnAccess(tid, pc, addr, size, write)
		return addr
	}}
}

// kernelBus adapts the protection provider to the guest kernel's memory
// path. The provider resolves kernel accesses to protected pages its own
// way — AikidoVM emulates the access (§3.2.6), the dOS kernel checks its
// ownership table, the DTHREADS shim unprotects around it — and charges the
// cost internally.
type kernelBus struct {
	prov provider.Interface
}

func (b *kernelBus) Load(tid guest.TID, addr uint64, size uint8, user bool) (uint64, *pagetable.Fault) {
	v, fault := b.prov.Load(tid, addr, size, user)
	if fault != nil {
		return 0, &pagetable.Fault{Addr: fault.Addr, Access: fault.Access, Unmapped: fault.Unmapped}
	}
	return v, nil
}

func (b *kernelBus) Store(tid guest.TID, addr uint64, size uint8, val uint64, user bool) *pagetable.Fault {
	fault := b.prov.Store(tid, addr, size, val, user)
	if fault != nil {
		return &pagetable.Fault{Addr: fault.Addr, Access: fault.Access, Unmapped: fault.Unmapped}
	}
	return nil
}

// Result is the outcome of one run with every layer's statistics.
type Result struct {
	Mode     Mode
	Cycles   uint64
	ExitCode int64
	Console  string

	Engine dbi.Counters
	HV     hypervisor.Stats
	Prov   provider.Stats
	Umbra  umbra.Stats
	SD     sharing.Counters
	FT     fasttrack.Counters
	Races  []fasttrack.Race

	// LockSet results (when the LockSet analysis is selected).
	LS       lockset.Counters
	Warnings []lockset.Warning
	// Sampling counters (when the sampling analysis is selected).
	Sampling sampler.Counters
	// Atomicity results (when the atomicity analysis is selected).
	Atom       atomicity.Counters
	Violations []atomicity.Violation
	// Communication-graph results (when that analysis is selected).
	CG        commgraph.Counters
	CommEdges []commgraph.WeightedEdge

	GuestContextSwitches uint64
	GuestSyscalls        uint64
}

// Run executes the assembled system to completion.
func (s *System) Run() (*Result, error) {
	eres, err := s.Engine.Run()
	if err != nil {
		return nil, err
	}
	r := &Result{
		Mode:                 s.Cfg.Mode,
		Cycles:               eres.Cycles,
		ExitCode:             eres.ExitCode,
		Console:              eres.Console,
		Engine:               eres.Counters,
		GuestContextSwitches: s.Process.ContextSwitches,
		GuestSyscalls:        s.Process.SyscallCount,
	}
	if s.HV != nil {
		r.HV = s.HV.Stats
	}
	if s.Prov != nil {
		r.Prov = s.Prov.Overhead()
	}
	if s.Um != nil {
		r.Umbra = s.Um.Stats
	}
	if s.SD != nil {
		r.SD = s.SD.C
	}
	if s.FT != nil {
		r.FT = s.FT.C
		r.Races = s.FT.Races()
	}
	if s.LS != nil {
		r.LS = s.LS.C
		r.Warnings = s.LS.Warnings()
	}
	if s.Sampler != nil {
		r.Sampling = s.Sampler.C
	}
	if s.Atom != nil {
		r.Atom = s.Atom.C
		r.Violations = s.Atom.Violations()
	}
	if s.CG != nil {
		r.CG = s.CG.C
		r.CommEdges = s.CG.Edges()
	}
	return r, nil
}

// Run is the one-shot convenience: assemble and execute prog under cfg.
func Run(prog *isa.Program, cfg Config) (*Result, error) {
	s, err := NewSystem(prog, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// TallyCounters implements stats.RunCounters, exposing the aggregate
// counters the concurrent runner's per-worker tallies sum over.
func (r *Result) TallyCounters() (cycles, instructions, memRefs, instrumented, shared, races uint64) {
	return r.Cycles, r.Engine.Instructions, r.Engine.MemRefs,
		r.Engine.InstrumentedExecs, r.SD.SharedPageAccesses, uint64(len(r.Races))
}

// SharedAccessFraction is Figure 6's metric: the fraction of all memory-
// referencing instruction executions that targeted shared pages.
func (r *Result) SharedAccessFraction() float64 {
	if r.Engine.MemRefs == 0 {
		return 0
	}
	return float64(r.SD.SharedPageAccesses) / float64(r.Engine.MemRefs)
}

// Slowdown computes r's slowdown relative to a baseline (native) run.
func (r *Result) Slowdown(native *Result) float64 {
	return stats.Ratio(r.Cycles, native.Cycles)
}

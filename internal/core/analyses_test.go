package core

import (
	"testing"

	"repro/internal/isa"
)

// runWith runs prog under mode with the named analyses at a fine quantum.
func runWith(t *testing.T, prog *isa.Program, mode Mode, analyses ...string) *Result {
	t.Helper()
	cfg := DefaultConfig(mode)
	cfg.Analyses = analyses
	cfg.Engine.Quantum = 50
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatalf("%v/%v: %v", mode, analyses, err)
	}
	return res
}

func TestLockSetOverAikidoFindsDisciplineViolation(t *testing.T) {
	prog := sharedProgram(60, false) // unlocked shared counter
	res := runWith(t, prog, ModeAikidoFastTrack, "lockset")
	if len(warningsOf(res)) == 0 {
		t.Fatal("LockSet over Aikido missed the unlocked counter")
	}
	if len(racesOf(res)) != 0 {
		t.Error("FastTrack races reported by a LockSet run")
	}
	if lsOf(res).Refinements == 0 {
		t.Error("no lockset refinements recorded")
	}
}

func TestLockSetCleanOnLockedProgram(t *testing.T) {
	// Strict discipline: EVERY access to the counter (including main's
	// final read-out) holds the lock. Note sharedProgram would not do:
	// its post-join read is unlocked — ordered, so fine for FastTrack,
	// but an Eraser violation (see
	// TestLockSetFlagsFalsePositiveThatFastTrackAvoids).
	b := isa.NewBuilder("disciplined")
	ctr := b.Global(4096, 4096)
	body := func(b *isa.Builder) {
		b.Lock(1)
		b.LoadAbs(isa.R3, ctr)
		b.AddImm(isa.R3, isa.R3, 1)
		b.StoreAbs(ctr, isa.R3)
		b.Unlock(1)
	}
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("worker", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.LoopN(isa.R2, 60, body)
	b.ThreadJoin(isa.R9)
	b.Lock(1)
	b.LoadAbs(isa.R3, ctr)
	b.Unlock(1)
	b.Halt()
	b.Label("worker")
	b.LoopN(isa.R2, 60, body)
	b.Halt()
	prog := b.MustFinish()

	for _, mode := range []Mode{ModeFastTrackFull, ModeAikidoFastTrack} {
		res := runWith(t, prog, mode, "lockset")
		if len(warningsOf(res)) != 0 {
			t.Errorf("%v: disciplined counter warned: %v", mode, warningsOf(res)[0])
		}
	}
}

func TestLockSetFullAndAikidoAgree(t *testing.T) {
	prog := sharedProgram(60, false)
	full := runWith(t, prog, ModeFastTrackFull, "lockset")
	aikido := runWith(t, prog, ModeAikidoFastTrack, "lockset")
	if len(warningsOf(full)) == 0 || len(warningsOf(aikido)) == 0 {
		t.Fatalf("warnings: full=%d aikido=%d", len(warningsOf(full)), len(warningsOf(aikido)))
	}
	fa := map[uint64]bool{}
	for _, w := range warningsOf(full) {
		fa[w.Addr] = true
	}
	for _, w := range warningsOf(aikido) {
		if !fa[w.Addr] {
			t.Errorf("aikido-only warning at %#x", w.Addr)
		}
	}
}

func TestLockSetFlagsFalsePositiveThatFastTrackAvoids(t *testing.T) {
	// Fork/join-ordered unlocked writes: FastTrack (happens-before) is
	// silent; LockSet warns — the §7.3 precision difference, reproduced.
	b := isa.NewBuilder("hbonly")
	x := b.Global(4096, 4096)
	warm := b.Global(4096, 4096)
	// Warm the page to shared first so Aikido's first-access window does
	// not mask the comparison: both threads touch `warm` on the same page
	// as x? No: x's page must be shared for instrumentation. Do it by
	// having both threads write DISTINCT blocks of x's page before the
	// ordered pair.
	_ = warm
	b.MovImm(isa.R1, 7)
	b.StoreAbs(x+64, isa.R1) // main touches x's page (private)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.ThreadJoin(isa.R9)
	b.MovImm(isa.R1, 1)
	b.StoreAbs(x, isa.R1) // ordered AFTER the child's write by join
	b.Halt()
	b.Label("w")
	b.MovImm(isa.R1, 2)
	b.StoreAbs(x+128, isa.R1) // makes the page shared
	b.StoreAbs(x, isa.R1)     // child's write, ordered before the join
	b.Halt()
	prog := b.MustFinish()

	ft := runWith(t, prog, ModeFastTrackFull, "fasttrack")
	ls := runWith(t, prog, ModeFastTrackFull, "lockset")
	if len(racesOf(ft)) != 0 {
		t.Errorf("FastTrack flagged join-ordered writes: %v", racesOf(ft))
	}
	found := false
	for _, w := range warningsOf(ls) {
		if w.Addr == x {
			found = true
		}
	}
	if !found {
		t.Errorf("LockSet did not flag the unlocked (but ordered) writes: %v", warningsOf(ls))
	}
}

func TestSamplingTradesAccuracyForSpeed(t *testing.T) {
	// On a long racy run, the sampler must be faster than full FastTrack
	// in simulated cycles while analyzing only a fraction of accesses.
	prog := sharedProgram(800, false)
	full := runWith(t, prog, ModeFastTrackFull, "fasttrack")
	sampled := runWith(t, prog, ModeFastTrackFull, "sampled")

	if sampled.Cycles >= full.Cycles {
		t.Errorf("sampling (%d cycles) not cheaper than full (%d)", sampled.Cycles, full.Cycles)
	}
	if len(racesOf(full)) == 0 {
		t.Fatal("full FastTrack missed the counter race")
	}
	// The sampler's burst usually catches the hot counter race too (the
	// race exists from the first executions); the guarantee it LACKS is
	// coverage of races that first manifest in hot code — covered by the
	// sampler unit tests. Here we only require soundness of what it does
	// report: every sampled-detector race is one the full detector found.
	fa := map[uint64]bool{}
	for _, r := range racesOf(full) {
		fa[r.Addr] = true
	}
	for _, r := range racesOf(sampled) {
		if !fa[r.Addr] {
			t.Errorf("sampler invented a race at %#x", r.Addr)
		}
	}
	if samplingOf(sampled).Sampled == 0 {
		t.Error("sampler analyzed nothing")
	}
	if samplingOf(sampled).Sampled >= samplingOf(sampled).Seen {
		t.Error("sampler never skipped an access on a hot loop")
	}
}

func TestDefaultAnalysisIsFastTrack(t *testing.T) {
	prog := sharedProgram(30, true)
	res := runWith(t, prog, ModeAikidoFastTrack, "fasttrack")
	if ftOf(res).Reads+ftOf(res).Writes == 0 {
		t.Error("default analysis did not run")
	}
}

func TestAtomicityCheckerOverAikido(t *testing.T) {
	// A stale-read bug: each thread's "increment" takes the lock twice —
	// read in one critical section, write in another — so a remote write
	// can interleave between read and... no: with separate regions the
	// checker is silent (cross-region). The detectable AVIO pattern is a
	// remote UNLOCKED write interleaving inside one lock-held region.
	b := isa.NewBuilder("atomviol")
	v := b.Global(4096, 4096)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.LoopN(isa.R2, 50, func(b *isa.Builder) {
		b.Lock(1)
		b.LoadAbs(isa.R3, v) // l1 = R
		b.AddImm(isa.R3, isa.R3, 1)
		b.StoreAbs(v, isa.R3) // l2 = W (R-?-W window)
		b.Unlock(1)
	})
	b.ThreadJoin(isa.R9)
	b.Halt()
	b.Label("w")
	b.LoopN(isa.R2, 50, func(b *isa.Builder) {
		// Unlocked remote writes that can land inside main's region.
		b.MovImm(isa.R3, 99)
		b.StoreAbs(v, isa.R3)
		b.Nop()
	})
	b.Halt()
	prog := b.MustFinish()

	res := runWith(t, prog, ModeAikidoFastTrack, "atomicity")
	if len(violationsOf(res)) == 0 {
		t.Fatal("atomicity checker missed the interleaved unlocked write")
	}
	found := false
	for _, viol := range violationsOf(res) {
		if viol.Addr == v && viol.Pattern == "R-W-W" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected R-W-W on %#x, got %v", v, violationsOf(res))
	}
	if atomOf(res).Regions == 0 {
		t.Error("no regions tracked")
	}

	// The same program with the remote writes also locked: clean.
	b2 := isa.NewBuilder("atomclean")
	v2 := b2.Global(4096, 4096)
	b2.MovImm(isa.R5, 0)
	b2.ThreadCreate("w", isa.R5)
	b2.Mov(isa.R9, isa.R0)
	body := func(b *isa.Builder) {
		b.Lock(1)
		b.LoadAbs(isa.R3, v2)
		b.AddImm(isa.R3, isa.R3, 1)
		b.StoreAbs(v2, isa.R3)
		b.Unlock(1)
	}
	b2.LoopN(isa.R2, 50, body)
	b2.ThreadJoin(isa.R9)
	b2.Halt()
	b2.Label("w")
	b2.LoopN(isa.R2, 50, body)
	b2.Halt()
	clean := runWith(t, b2.MustFinish(), ModeAikidoFastTrack, "atomicity")
	if len(violationsOf(clean)) != 0 {
		t.Errorf("properly locked increments reported: %v", violationsOf(clean))
	}
}

package core

// Tests for DispatchPhased, the Doppel-style split-phase refinement: the
// sharing detector flips many-writer-every-epoch pages into a split
// phase whose accesses bank in per-thread delta rings, and the pipeline
// reconciles the deltas into canonical shadow state — in (seq, addr,
// kind) order, strictly before every phase flip, sync event and epoch
// sweep. The contracts pinned here:
//
//   - never-hot workloads are byte-identical to inline dispatch in
//     EVERY Result field — findings, counters and cycles — because no
//     page ever splits and joined delivery charges exactly like inline;
//   - hot racy workloads keep their race sets byte-identical to inline
//     on aggressive schedules, with only the phase machinery's own
//     counters differing;
//   - the bank and steady-state reconcile paths allocate nothing.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/sharing"
	"repro/internal/stats"
	"repro/internal/workload"
)

// hotProgram builds the permanently-hot shape: nthreads workers hammer
// the SAME three slots of one page, unlocked, for iters iterations each
// — many writers every epoch, and real races for FastTrack to find.
func hotProgram(nthreads, iters int64) *isa.Program {
	b := isa.NewBuilder("hot")
	page := b.Global(4096, 4096)
	for i := int64(0); i < nthreads; i++ {
		b.MovImm(isa.R5, i)
		b.ThreadCreate("w", isa.R5)
		b.Mov(isa.R9+isa.Reg(i), isa.R0)
	}
	for i := int64(0); i < nthreads; i++ {
		b.Mov(isa.R9, isa.R9+isa.Reg(i))
		b.ThreadJoin(isa.R9)
	}
	b.Halt()
	b.Label("w")
	b.MovImm(isa.R4, int64(page))
	b.MovImm(isa.R3, 1)
	b.LoopN(isa.R2, iters, func(b *isa.Builder) {
		b.Store(isa.R4, 0, isa.R3)
		b.Store(isa.R4, 8, isa.R3)
		b.Load(isa.R6, isa.R4, 16)
	})
	b.Halt()
	return b.MustFinish()
}

// aggressivePhasePolicy splits after two hot epochs with tiny volume
// floors, so short test programs cross the phase boundary many times.
func aggressivePhasePolicy() sharing.PhasePolicy {
	return sharing.PhasePolicy{SplitAfter: 2, JoinAfter: 2, MinHotHits: 8, MinOtherWrites: 2}
}

// requirePhaseIdentical compares a phased run against inline dispatch:
// everything must match except the phase machinery's own counters
// (Result.PhaseReconciles/PhaseBanked, SD.PagesSplit/PagesJoined) and
// EpochTicks. Tick-point identity is deliberately NOT part of the
// hot-page contract: banked records deliver their analysis charges at
// reconcile time, so a tick check between bank and reconcile reads a
// slightly older clock and boundary crossings are detected later —
// total cycles are unchanged (the same charges land in the same order),
// and never-hot runs keep full tick identity (TestPhaseByteIdentical).
func requirePhaseIdentical(t *testing.T, label string, inline, phased *Result) {
	t.Helper()
	in, ph := stripDeferredCounters(inline), stripDeferredCounters(phased)
	in.SD.PagesSplit, in.SD.PagesJoined = 0, 0
	ph.SD.PagesSplit, ph.SD.PagesJoined = 0, 0
	in.EpochTicks, ph.EpochTicks = 0, 0
	in.SD.EpochSweeps, ph.SD.EpochSweeps = 0, 0
	if in.Cycles != ph.Cycles {
		t.Errorf("%s: cycles diverge: inline %d, phased %d", label, in.Cycles, ph.Cycles)
	}
	if in.SD != ph.SD {
		t.Errorf("%s: sharing counters diverge:\ninline: %+v\nphased: %+v", label, in.SD, ph.SD)
	}
	if !reflect.DeepEqual(in.AnalysisNames(), ph.AnalysisNames()) {
		t.Fatalf("%s: analysis sets diverge: %v vs %v", label, in.AnalysisNames(), ph.AnalysisNames())
	}
	for _, name := range in.AnalysisNames() {
		fi, fp := in.Findings[name], ph.Findings[name]
		if !reflect.DeepEqual(fi.Strings(), fp.Strings()) {
			t.Errorf("%s/%s: findings diverge:\ninline: %v\nphased: %v",
				label, name, fi.Strings(), fp.Strings())
		}
		if fi.Summary() != fp.Summary() {
			t.Errorf("%s/%s: counters diverge:\ninline: %s\nphased: %s",
				label, name, fi.Summary(), fp.Summary())
		}
	}
	if !reflect.DeepEqual(in, ph) {
		t.Errorf("%s: results diverge outside the compared fields", label)
	}
}

// TestPhaseByteIdentical: on workloads the classifier keeps joined —
// demoting phased/migratory suites, a lock-disciplined counter — a
// phased run is byte-identical to inline dispatch in EVERY field
// (cycles included), under both the default and the transition cost
// model, with zero pages split and zero records banked. This is the
// non-hot half of the split-phase contract: phases that never engage
// must be entirely free.
func TestPhaseByteIdentical(t *testing.T) {
	phasedSpec := workload.PhasedSpec{
		Name: "phased", Threads: 8, Phases: 6, PhaseIters: 200,
		PagesPerPart: 2, OpsPerIter: 8, AluOps: 6, WarmupOps: 1,
	}
	migratory := phasedSpec
	migratory.Name = "migratory"
	migratory.MigrateStride = 1

	progs := map[string]*isa.Program{
		"locked-counter": sharedProgram(200, true),
	}
	for _, src := range []workload.Source{phasedSpec, migratory} {
		prog, err := src.Compile()
		if err != nil {
			t.Fatalf("%s: %v", src.SourceName(), err)
		}
		progs[src.SourceName()] = prog
	}

	costs := map[string]stats.CostModel{
		"default":  stats.DefaultCosts(),
		"dispatch": stats.DispatchCosts(),
	}
	for cname, cm := range costs {
		for name, prog := range progs {
			cfg := DefaultConfig(ModeAikidoFastTrack)
			cfg.Costs = cm
			cfg.Epoch = sharing.DefaultEpochPolicy()
			cfg.Phase = sharing.DefaultPhasePolicy()
			label := name + "/" + cname
			inline := runDispatch(t, prog, cfg, DispatchInline)
			phased := runDispatch(t, prog, cfg, DispatchPhased)
			if phased.SD.PagesSplit != 0 || phased.PhaseBanked != 0 {
				t.Errorf("%s: classifier split a non-hot workload (%d pages, %d banked)",
					label, phased.SD.PagesSplit, phased.PhaseBanked)
			}
			if name != "locked-counter" && phased.SD.PagesDemotedPrivate == 0 {
				t.Errorf("%s: no demotion — the epoch interplay coverage is vacuous", label)
			}
			if !reflect.DeepEqual(inline, phased) {
				requirePhaseIdentical(t, label, inline, phased)
				t.Errorf("%s: phased Result not byte-identical to inline", label)
			}
		}
	}
}

// TestPhaseSplitsHotPage pins the classifier's positive half end to end:
// a many-writer page splits after the policy's streak, its accesses
// bank and reconcile, and everything except the phase counters is still
// identical to inline dispatch (under the default cost model, banking
// is charge-free and reconciliation preserves order).
func TestPhaseSplitsHotPage(t *testing.T) {
	prog := hotProgram(4, 3000)
	cfg := DefaultConfig(ModeAikidoFastTrack)
	// The epoch interval must span several scheduling quanta: an epoch one
	// thread monopolizes has a single writer and can never classify hot.
	cfg.Engine.Quantum = 200
	cfg.Epoch = sharing.EpochPolicy{Interval: 60_000, DemoteAfter: 2, QuietAfter: 6, MinOwnerHits: 4}
	cfg.Phase = aggressivePhasePolicy()
	inline := runDispatch(t, prog, cfg, DispatchInline)
	phased := runDispatch(t, prog, cfg, DispatchPhased)
	if phased.SD.PagesSplit == 0 {
		t.Fatalf("hot page never split (sweeps=%d)", phased.SD.EpochSweeps)
	}
	if phased.PhaseBanked == 0 || phased.PhaseReconciles == 0 {
		t.Fatalf("split page banked nothing (banked=%d reconciles=%d)",
			phased.PhaseBanked, phased.PhaseReconciles)
	}
	if len(racesOf(phased)) == 0 {
		t.Fatal("hot racy program produced no races — the preservation check is vacuous")
	}
	requirePhaseIdentical(t, "hot", inline, phased)
}

// TestPhaseReconcilePreservesRaces is the schedule-robustness half:
// across aggressive schedules (scheduling quanta from pathological to
// coarse), the race set a phased run reports on a hot racy page is
// byte-identical to inline dispatch's on the same schedule — banked
// records reconcile in canonical order at every drain point, so no
// schedule can make a race appear, vanish or reorder.
func TestPhaseReconcilePreservesRaces(t *testing.T) {
	prog := hotProgram(4, 2000)
	for _, quantum := range []uint64{7, 53, 311, 977} {
		cfg := DefaultConfig(ModeAikidoFastTrack)
		cfg.Engine.Quantum = quantum
		cfg.Epoch = sharing.EpochPolicy{Interval: 60_000, DemoteAfter: 2, QuietAfter: 6, MinOwnerHits: 4}
		cfg.Phase = aggressivePhasePolicy()
		inline := runDispatch(t, prog, cfg, DispatchInline)
		phased := runDispatch(t, prog, cfg, DispatchPhased)
		if phased.SD.PagesSplit == 0 || phased.PhaseBanked == 0 {
			t.Fatalf("quantum %d: hot page never split (split=%d banked=%d)",
				quantum, phased.SD.PagesSplit, phased.PhaseBanked)
		}
		ri, rp := racesOf(inline), racesOf(phased)
		if len(ri) == 0 {
			t.Fatalf("quantum %d: inline run found no races — preservation is vacuous", quantum)
		}
		if !reflect.DeepEqual(ri, rp) {
			t.Errorf("quantum %d: race sets diverge:\ninline: %v\nphased: %v", quantum, ri, rp)
		}
	}
}

// TestPhaseBankNoAllocs is the split path's 0-alloc guard: banking an
// access into the delta ring and the steady-state reconcile merge must
// allocate nothing once the ring and scratch buffers exist.
func TestPhaseBankNoAllocs(t *testing.T) {
	p := newPipeline(&nopAnalysisCore{}, 1, &stats.Clock{}, stats.DefaultCosts())
	p.phased = true
	p.OnSplitAccess(2, 10, 0x1000, 8, true) // allocate the ring
	if n := testing.AllocsPerRun(1000, func() {
		p.OnSplitAccess(2, 10, 0x1000, 8, true)
		if p.pending > ringCap-8 {
			p.drain()
		}
	}); n != 0 {
		t.Errorf("bank path allocates %.2f objects per access, want 0", n)
	}
	// Steady-state reconcile: after the first merge has sized the scratch
	// and group buffers, a full bank-and-reconcile cycle is allocation-free.
	p.drain()
	p.OnSplitAccess(2, 10, 0x1000, 8, true)
	p.drain()
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			p.OnSplitAccess(guest.TID(2+i%2), 10, uint64(0x1000+8*(i%16)), 8, i%2 == 0)
		}
		p.drain()
	}); n != 0 {
		t.Errorf("steady-state reconcile allocates %.2f objects per merge, want 0", n)
	}
}

// straddleRecorder records the interleaving of batch replays and inline
// deliveries, so ordering across the straddle escape hatch is checkable.
type straddleRecorder struct {
	nopAnalysisCore
	events []string
}

func (r *straddleRecorder) OnAccessBatch(recs []analysis.AccessRecord) {
	for _, rec := range recs {
		r.events = append(r.events, fmt.Sprintf("batch:%d", rec.Seq))
	}
}

func (r *straddleRecorder) OnSharedAccess(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) {
	r.events = append(r.events, fmt.Sprintf("inline:%#x", addr))
}

// TestPhasedStraddleDeliversInline pins the page-straddle escape hatch:
// a split-page access that crosses into the next page cannot be banked
// (its tail belongs to a page in an unknown phase), so the pipeline
// reconciles pending deltas FIRST and then delivers the straddler
// inline — order preserved across the seam.
func TestPhasedStraddleDeliversInline(t *testing.T) {
	rec := &straddleRecorder{}
	p := newPipeline(rec, 1, &stats.Clock{}, stats.DefaultCosts())
	p.phased = true
	p.OnSplitAccess(1, 10, 0x1ff0, 8, true)  // banks (seq 0)
	p.OnSplitAccess(1, 11, 0x1ffc, 8, true)  // straddles 0x1000→0x2000: drain, then inline
	p.OnSplitAccess(1, 12, 0x2000, 8, false) // banks (seq 1)
	p.drain()
	if p.precs != 2 {
		t.Errorf("banked %d records, want 2 (straddle must not bank)", p.precs)
	}
	want := []string{"batch:0", "inline:0x1ffc", "batch:1"}
	if !reflect.DeepEqual(rec.events, want) {
		t.Errorf("delivery order %v, want %v", rec.events, want)
	}
}

package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fasttrack"
	"repro/internal/isa"
	"repro/internal/workload"
)

// exampleProgram builds a tiny two-worker guest whose threads hammer one
// shared page (with an unsynchronized racy slot) next to private data —
// enough to exercise every layer of the stack in milliseconds. Workload
// programs are pure functions of their spec, so every run of these
// examples sees identical results.
func exampleProgram() *isa.Program {
	prog, err := workload.Build(workload.Spec{
		Name: "example", Threads: 2, Iters: 120,
		AluOps: 4, PrivateOps: 2, PrivatePages: 1,
		SharedOps: 1, SharedPeriod: 1, Locks: 1,
		RacyOps: 1, RacyPeriod: 1,
	})
	if err != nil {
		panic(err)
	}
	return prog
}

// ExampleRun runs the full Aikido stack — AikidoVM per-thread protection,
// AikidoSD sharing detection, mirror redirection — with FastTrack as the
// hosted analysis. Only accesses to shared pages reach the detector, yet
// the unsynchronized racy slot is still caught.
func ExampleRun() {
	prog := exampleProgram()
	res, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
	if err != nil {
		panic(err)
	}
	fmt.Println("mode:", res.Mode)
	fmt.Println("only shared accesses analyzed:",
		res.Engine.InstrumentedExecs > 0 && res.Engine.InstrumentedExecs < res.Engine.MemRefs)
	fmt.Println("race caught:", len(fasttrack.RacesIn(res.Findings)) > 0)
	// Output:
	// mode: Aikido-FastTrack
	// only shared accesses analyzed: true
	// race caught: true
}

// ExampleRun_native is the normalization baseline of Figure 5: plain
// execution with no DBI engine cost and no analysis.
func ExampleRun_native() {
	prog := exampleProgram()
	res, err := core.Run(prog, core.DefaultConfig(core.ModeNative))
	if err != nil {
		panic(err)
	}
	fmt.Println("mode:", res.Mode)
	fmt.Println("instrumented:", res.Engine.InstrumentedExecs)
	fmt.Println("races:", len(fasttrack.RacesIn(res.Findings)))
	// Output:
	// mode: native
	// instrumented: 0
	// races: 0
}

// ExampleRun_dbi measures the DynamoRIO-only floor: the guest runs under
// the code cache with no tool attached, so the only overhead is engine
// dispatch and block building.
func ExampleRun_dbi() {
	prog := exampleProgram()
	native, err := core.Run(prog, core.DefaultConfig(core.ModeNative))
	if err != nil {
		panic(err)
	}
	res, err := core.Run(prog, core.DefaultConfig(core.ModeDBI))
	if err != nil {
		panic(err)
	}
	fmt.Println("mode:", res.Mode)
	fmt.Println("dispatch overhead paid:", res.Cycles > native.Cycles)
	fmt.Println("analysis attached:", res.Engine.InstrumentedExecs > 0)
	// Output:
	// mode: dbi
	// dispatch overhead paid: true
	// analysis attached: false
}

// ExampleRun_fastTrackFull is the paper's conservative baseline: FastTrack
// instruments every memory access through Umbra shadow translation.
func ExampleRun_fastTrackFull() {
	prog := exampleProgram()
	res, err := core.Run(prog, core.DefaultConfig(core.ModeFastTrackFull))
	if err != nil {
		panic(err)
	}
	fmt.Println("mode:", res.Mode)
	fmt.Println("every access analyzed:", fasttrack.CountersIn(res.Findings).Reads+fasttrack.CountersIn(res.Findings).Writes == res.Engine.MemRefs)
	fmt.Println("race caught:", len(fasttrack.RacesIn(res.Findings)) > 0)
	// Output:
	// mode: FastTrack
	// every access analyzed: true
	// race caught: true
}

// ExampleRun_aikidoProfile runs AikidoSD with no attached analysis —
// Aikido as a standalone sharing profiler (the framework is
// analysis-agnostic; §1.1).
func ExampleRun_aikidoProfile() {
	prog := exampleProgram()
	res, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoProfile))
	if err != nil {
		panic(err)
	}
	fmt.Println("mode:", res.Mode)
	fmt.Println("sharing observed:", res.SD.PagesShared > 0 && res.SD.SharedPageAccesses > 0)
	fmt.Println("races:", len(fasttrack.RacesIn(res.Findings)))
	// Output:
	// mode: Aikido-profile
	// sharing observed: true
	// races: 0
}

package core

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/workload"
)

// pagingSpec is a small workload with private, shared, racy and mixed
// accesses — enough to drive every sharing-detector path.
func pagingSpec(threads int) workload.Spec {
	return workload.Spec{
		Name: "paging", Threads: threads, Iters: 40,
		AluOps: 2, PrivateOps: 4, PrivatePages: 2,
		SharedOps: 2, SharedPeriod: 2, Locks: 2,
		MixedOps: 1, MixedPeriod: 4,
		RacyOps: 2, RacyPeriod: 8,
	}
}

// TestPagingModesAgree runs the identical workload under shadow and nested
// paging and requires bit-identical analysis results: same races, same
// sharing statistics, same instrumentation set. Only the cycle costs may
// differ — the paging mode is a mechanism, not a policy.
func TestPagingModesAgree(t *testing.T) {
	prog, err := workload.Build(pagingSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	run := func(paging hypervisor.PagingMode) *Result {
		cfg := DefaultConfig(ModeAikidoFastTrack)
		cfg.Paging = paging
		r, err := Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	shadow := run(hypervisor.ShadowPaging)
	nested := run(hypervisor.NestedPaging)

	if shadow.SD != nested.SD {
		t.Errorf("sharing counters diverge:\nshadow: %+v\nnested: %+v", shadow.SD, nested.SD)
	}
	if len(racesOf(shadow)) != len(racesOf(nested)) {
		t.Errorf("race counts diverge: shadow %d, nested %d",
			len(racesOf(shadow)), len(racesOf(nested)))
	}
	if ftOf(shadow) != ftOf(nested) {
		t.Errorf("FastTrack work diverges:\nshadow: %+v\nnested: %+v", ftOf(shadow), ftOf(nested))
	}
	if shadow.Engine.MemRefs != nested.Engine.MemRefs {
		t.Errorf("retired memory refs diverge: %d vs %d",
			shadow.Engine.MemRefs, nested.Engine.MemRefs)
	}
	if shadow.Console != nested.Console || shadow.ExitCode != nested.ExitCode {
		t.Error("guest-visible behaviour diverges across paging modes")
	}
	if shadow.Cycles == nested.Cycles {
		t.Log("note: paging modes happened to cost the same (not an error)")
	}
}

// TestNestedPagingTradeoffVisible checks the cost structure: nested paging
// must not trap guest page-table updates, and must charge pricier
// translation fills.
func TestNestedPagingTradeoffVisible(t *testing.T) {
	prog, err := workload.Build(pagingSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeAikidoFastTrack)
	cfg.Paging = hypervisor.NestedPaging
	s, err := NewSystem(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.HV.GuestPTUpdates != 0 {
		t.Errorf("nested paging trapped %d guest PT updates", r.HV.GuestPTUpdates)
	}
	if r.HV.ShadowFills == 0 {
		t.Error("no translation fills recorded")
	}
}

// TestSwitchInterceptionInvariant runs the workload under all three
// context-switch interception mechanisms: analysis results must be
// identical, and only the transparent mechanisms may claim to support
// unmodified guests.
func TestSwitchInterceptionInvariant(t *testing.T) {
	prog, err := workload.Build(pagingSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	var base *Result
	for _, sw := range []hypervisor.SwitchInterception{
		hypervisor.SwitchHypercall, hypervisor.SwitchSegTrap, hypervisor.SwitchProbe,
	} {
		cfg := DefaultConfig(ModeAikidoFastTrack)
		cfg.Switch = sw
		r, err := Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = r
			continue
		}
		if r.SD != base.SD || len(racesOf(r)) != len(racesOf(base)) {
			t.Errorf("switch mechanism %v changes analysis results", sw)
		}
	}
}

package core

import (
	"repro/internal/stats"
)

// EpochClock schedules AikidoSD's epoch-based re-privatization sweeps
// (internal/sharing/epoch.go) against the system's simulated cycle clock.
// The detector calls MaybeTick from its instrumented hot paths; when the
// configured interval has elapsed, one sweep closes the epoch and demotes
// qualifying Shared pages. Deterministic by construction: the decision
// depends only on simulated cycles, never on wall-clock or scheduling.
type EpochClock struct {
	clock    *stats.Clock
	interval uint64
	next     uint64
	sweep    func()

	// Ticks counts epoch boundaries that fired.
	Ticks uint64
}

// newEpochClock builds a clock that fires sweep once per interval cycles.
func newEpochClock(clock *stats.Clock, interval uint64, sweep func()) *EpochClock {
	return &EpochClock{clock: clock, interval: interval, next: interval, sweep: sweep}
}

// MaybeTick runs the sweep if the current epoch has elapsed. It is
// allocation-free and cheap enough for per-access call sites (one load
// and one compare on the common path). The deadline saturates instead of
// wrapping when cycles approach the uint64 limit: an overflowed deadline
// would sit below the clock forever and fire a sweep on every check.
func (c *EpochClock) MaybeTick() {
	cy := c.clock.Cycles()
	if cy < c.next {
		return
	}
	next := cy + c.interval
	if next < cy {
		next = ^uint64(0) // saturate: no further ticks, not a tick storm
	}
	c.next = next
	c.Ticks++
	c.sweep()
}

package core

import (
	"testing"

	"repro/internal/provider"
	"repro/internal/workload"
)

// TestProvidersAgree runs one workload under all three per-thread
// protection providers (§7.1) and requires identical analysis results:
// the provider is a mechanism choice, invisible to AikidoSD and FastTrack.
func TestProvidersAgree(t *testing.T) {
	prog, err := workload.Build(pagingSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	run := func(kind provider.Kind) *Result {
		cfg := DefaultConfig(ModeAikidoFastTrack)
		cfg.Provider = kind
		r, err := Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	vm := run(provider.AikidoVM)
	dos := run(provider.DOS)
	procs := run(provider.Dthreads)

	for _, tc := range []struct {
		name string
		r    *Result
	}{{"dos", dos}, {"dthreads", procs}} {
		if tc.r.SD != vm.SD {
			t.Errorf("%s sharing counters diverge:\n%+v\nvs aikidovm:\n%+v", tc.name, tc.r.SD, vm.SD)
		}
		if len(racesOf(tc.r)) != len(racesOf(vm)) {
			t.Errorf("%s races = %d, aikidovm = %d", tc.name, len(racesOf(tc.r)), len(racesOf(vm)))
		}
		if ftOf(tc.r) != ftOf(vm) {
			t.Errorf("%s FastTrack work diverges", tc.name)
		}
		if tc.r.Console != vm.Console || tc.r.ExitCode != vm.ExitCode {
			t.Errorf("%s guest-visible behaviour diverges", tc.name)
		}
		if tc.r.Engine.MemRefs != vm.Engine.MemRefs {
			t.Errorf("%s retired mem refs = %d, aikidovm = %d",
				tc.name, tc.r.Engine.MemRefs, vm.Engine.MemRefs)
		}
	}
}

// TestProviderOverheadsDiffer: the providers must also *disagree* — on cost
// structure. The DTHREADS fork tax must show at thread creation, and the
// provider stats must be populated.
func TestProviderOverheadsDiffer(t *testing.T) {
	prog, err := workload.Build(pagingSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[provider.Kind]uint64{}
	for _, kind := range []provider.Kind{provider.AikidoVM, provider.DOS, provider.Dthreads} {
		cfg := DefaultConfig(ModeAikidoFastTrack)
		cfg.Provider = kind
		r, err := Run(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cycles[kind] = r.Cycles
		if r.Prov.ProtOps == 0 || r.Prov.RangeOps == 0 {
			t.Errorf("%v: protection ops not counted: %+v", kind, r.Prov)
		}
		if r.Prov.ThreadSetups == 0 {
			t.Errorf("%v: thread setups not counted", kind)
		}
		if r.Prov.Faults == 0 {
			t.Errorf("%v: provider faults not counted", kind)
		}
	}
	if cycles[provider.AikidoVM] == cycles[provider.DOS] ||
		cycles[provider.DOS] == cycles[provider.Dthreads] {
		t.Errorf("providers cost identically — the ablation would be vacuous: %v", cycles)
	}
	// The hypervisor pays for transparency: dOS (a patched kernel doing
	// the same thing natively) must be cheaper on this workload.
	if cycles[provider.DOS] >= cycles[provider.AikidoVM] {
		t.Errorf("dOS (%d cycles) should undercut AikidoVM (%d cycles)",
			cycles[provider.DOS], cycles[provider.AikidoVM])
	}
}

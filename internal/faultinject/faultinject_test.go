package faultinject

import (
	"errors"
	"testing"
)

func TestParsePlanEmpty(t *testing.T) {
	for _, s := range []string{"", "  "} {
		p, err := ParsePlan(s)
		if err != nil || p != nil {
			t.Errorf("ParsePlan(%q) = %v, %v; want nil, nil", s, p, err)
		}
	}
	if !(*Plan)(nil).Empty() {
		t.Error("nil plan not Empty")
	}
	if (*Plan)(nil).NewInjector(nil) != nil {
		t.Error("nil plan built an injector")
	}
}

func TestParsePlanExplicit(t *testing.T) {
	p, err := ParsePlan("seed=7;error:drain@2;panic:analysis@100;stall:guest@3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 3 {
		t.Fatalf("plan = %+v", p)
	}
	want := []Rule{
		{Seam: SeamDrain, Kind: KindError, Count: 2},
		{Seam: SeamAnalysis, Kind: KindPanic, Count: 100},
		{Seam: SeamGuest, Kind: KindStall, Count: 3},
	}
	for i, r := range p.Rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
}

// TestParsePlanDerivedCounts: omitted counts resolve deterministically
// from the seed, differ across seeds, and round-trip through String.
func TestParsePlanDerivedCounts(t *testing.T) {
	a, err := ParsePlan("seed=1;panic:provider;error:guest")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePlan("seed=1;panic:provider;error:guest")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Errorf("same seed, rule %d differs: %+v vs %+v", i, a.Rules[i], b.Rules[i])
		}
		if a.Rules[i].Count == 0 || a.Rules[i].Count > derivedCountRange {
			t.Errorf("derived count %d out of range", a.Rules[i].Count)
		}
	}
	c, err := ParsePlan("seed=2;panic:provider;error:guest")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rules[0].Count == c.Rules[0].Count && a.Rules[1].Count == c.Rules[1].Count {
		t.Error("different seeds derived identical counts for every rule")
	}

	rt, err := ParsePlan(a.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", a.String(), err)
	}
	if rt.String() != a.String() {
		t.Errorf("round trip %q != %q", rt.String(), a.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"panic",              // no seam
		"panic:elsewhere",    // unknown seam
		"explode:guest",      // unknown kind
		"panic:guest@0",      // zero count
		"panic:guest@x",      // non-numeric count
		"seed=x;panic:guest", // bad seed
		"panic:guest;seed=3", // seed not first
		"seed=3",             // no rules
		"panic:guest@1@2",    // double count separator parses as bad count
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", s)
		}
	}
}

// TestFireError: an error rule returns a typed *Fault exactly once, at
// exactly its crossing.
func TestFireError(t *testing.T) {
	p, err := ParsePlan("error:guest@3")
	if err != nil {
		t.Fatal(err)
	}
	in := p.NewInjector(nil)
	for i := 1; i <= 10; i++ {
		err := in.Fire(SeamGuest)
		if i == 3 {
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("crossing 3: err = %v, want *Fault", err)
			}
			if f.Seam != SeamGuest || f.Kind != KindError || f.Count != 3 {
				t.Errorf("fault = %+v", f)
			}
			continue
		}
		if err != nil {
			t.Errorf("crossing %d: unexpected error %v", i, err)
		}
	}
	if in.Crossings(SeamGuest) != 10 {
		t.Errorf("crossings = %d, want 10", in.Crossings(SeamGuest))
	}
}

// TestFirePanic: a panic rule panics with a typed *Fault.
func TestFirePanic(t *testing.T) {
	p, err := ParsePlan("panic:drain@1")
	if err != nil {
		t.Fatal(err)
	}
	in := p.NewInjector(nil)
	func() {
		defer func() {
			r := recover()
			f, ok := r.(*Fault)
			if !ok {
				t.Fatalf("recovered %v (%T), want *Fault", r, r)
			}
			if f.Seam != SeamDrain || f.Kind != KindPanic || f.Count != 1 {
				t.Errorf("fault = %+v", f)
			}
		}()
		in.Fire(SeamDrain)
		t.Fatal("Fire did not panic")
	}()
	// One-shot: the next crossing is clean.
	if err := in.Fire(SeamDrain); err != nil {
		t.Errorf("second crossing: %v", err)
	}
}

// TestFireStall: a stall charges StallCycles to the wired clock and is
// not an error.
func TestFireStall(t *testing.T) {
	p, err := ParsePlan("stall:analysis@2")
	if err != nil {
		t.Fatal(err)
	}
	var charged uint64
	in := p.NewInjector(func(n uint64) { charged += n })
	if err := in.Fire(SeamAnalysis); err != nil || charged != 0 {
		t.Fatalf("crossing 1: err=%v charged=%d", err, charged)
	}
	if err := in.Fire(SeamAnalysis); err != nil {
		t.Fatalf("crossing 2: %v", err)
	}
	if charged != StallCycles {
		t.Errorf("charged = %d, want %d", charged, uint64(StallCycles))
	}
	if err := in.Fire(SeamAnalysis); err != nil || charged != StallCycles {
		t.Errorf("stall fired twice (charged=%d)", charged)
	}
}

// TestFireSeamsIndependent: counters are per seam; a rule on one seam
// never observes crossings of another.
func TestFireSeamsIndependent(t *testing.T) {
	p, err := ParsePlan("error:guest@1;error:drain@2")
	if err != nil {
		t.Fatal(err)
	}
	in := p.NewInjector(nil)
	if err := in.Fire(SeamDrain); err != nil {
		t.Errorf("drain crossing 1 fired guest rule: %v", err)
	}
	if err := in.Fire(SeamGuest); err == nil {
		t.Error("guest crossing 1 did not fire")
	}
	if err := in.Fire(SeamDrain); err == nil {
		t.Error("drain crossing 2 did not fire")
	}
}

// TestNilInjector: the disabled path is a nil receiver everywhere.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if err := in.Fire(SeamGuest); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if in.Crossings(SeamGuest) != 0 {
		t.Error("nil injector counted")
	}
}

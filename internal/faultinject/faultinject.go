// Package faultinject is the deterministic chaos harness behind the
// -chaos flags: a Plan names faults — panics, errors, simulated stalls —
// to inject at well-defined seams of the Aikido stack, each triggered on
// an exact crossing count of its seam, so an injected fault lands at the
// same point of the same cell on every run, at any worker count.
//
// Determinism is the whole design. Each System builds one Injector from
// the shared (immutable) Plan; seams fire sequentially within a run, so
// the per-seam crossing counters are deterministic, and a rule either
// fires at its configured crossing or — when the workload never reaches
// that count — not at all. Nothing here reads wall-clock time or a
// global RNG: the "seeded" half of the harness is a pure splitmix64
// derivation that resolves omitted trigger counts at parse time, so the
// Plan a run executes is always fully explicit (Plan.String prints the
// resolved form).
//
// The seams, and what each kind of fault does there, are wired by
// internal/core (see its chaos.go):
//
//	provider — Provider.RearmPage, the epoch re-privatization primitive.
//	           Faults here are absorbed by the sharing detector's
//	           degradation path (the page stays Shared, demotion is
//	           disabled for it) and never abort the run.
//	guest    — the engine's per-quantum check. Errors abort the run with
//	           this package's typed Fault; panics unwind to the runner's
//	           containment.
//	drain    — the deferred dispatch pipeline's ring drain. Errors
//	           degrade the pipeline to inline delivery for the rest of
//	           the run; panics unwind to containment.
//	worker   — the parallel dispatch pipeline's per-drain fan-out.
//	           Errors (and recovered panics) degrade the run to inline
//	           delivery: shard state merges back and the batch replays
//	           in seq order; panics unwind to containment.
//	analysis — every analysis-bound access event (the outermost dispatch
//	           wrapper).
//	reconcile — the phased dispatch pipeline's split-phase reconciliation
//	           merge (fires only when banked deltas are pending). Errors
//	           degrade: the already-merged batch replays inline in seq
//	           order and the run latches inline delivery — no banked
//	           record is lost or duplicated; panics unwind to
//	           containment.
//	static   — once before the static privacy pre-pass runs. Errors and
//	           panics both degrade the run to the unpruned dynamic-only
//	           path (no summary applied, nothing pre-seeded); findings
//	           are unaffected by construction.
//
// Seams without an error return (provider, analysis) escalate error-kind
// faults to panics; the recovered value is still a typed *Fault, so the
// runner's classification and errors.As both see through it.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// Seam names an injection point in the stack.
type Seam uint8

// Injection seams.
const (
	// SeamProvider fires on Provider.RearmPage calls.
	SeamProvider Seam = iota
	// SeamGuest fires once per engine scheduling quantum.
	SeamGuest
	// SeamDrain fires once per deferred-dispatch ring drain.
	SeamDrain
	// SeamWorker fires once per parallel-dispatch drain, before the
	// merged batch fans out to the analysis workers.
	SeamWorker
	// SeamAnalysis fires once per analysis-bound access event.
	SeamAnalysis
	// SeamReconcile fires once per phased-dispatch reconciliation merge —
	// the split-phase boundary where banked per-thread deltas k-way-merge
	// back into canonical order — and only when deltas are pending.
	SeamReconcile
	// SeamStatic fires once before the static privacy pre-pass runs.
	// Errors (and recovered panics) degrade the run to the unpruned
	// dynamic-only path: no summary is applied, nothing is pre-seeded.
	SeamStatic

	numSeams
)

// String spells the seam as the plan grammar does.
func (s Seam) String() string {
	switch s {
	case SeamProvider:
		return "provider"
	case SeamGuest:
		return "guest"
	case SeamDrain:
		return "drain"
	case SeamWorker:
		return "worker"
	case SeamAnalysis:
		return "analysis"
	case SeamReconcile:
		return "reconcile"
	case SeamStatic:
		return "static"
	}
	return "seam?"
}

// ParseSeam resolves a seam name.
func ParseSeam(s string) (Seam, error) {
	switch s {
	case "provider":
		return SeamProvider, nil
	case "guest":
		return SeamGuest, nil
	case "drain":
		return SeamDrain, nil
	case "worker":
		return SeamWorker, nil
	case "analysis":
		return SeamAnalysis, nil
	case "reconcile":
		return SeamReconcile, nil
	case "static":
		return SeamStatic, nil
	}
	return 0, fmt.Errorf("faultinject: unknown seam %q (want provider, guest, drain, worker, analysis, reconcile or static)", s)
}

// Kind is the manifestation of an injected fault.
type Kind uint8

// Fault kinds.
const (
	// KindPanic panics with a *Fault at the seam.
	KindPanic Kind = iota
	// KindError returns a *Fault from the seam (escalated to a panic at
	// seams with no error return).
	KindError
	// KindStall charges StallCycles to the simulated clock — a hung
	// operation in simulated time. A stall is not an error by itself;
	// it surfaces as a typed budget error when the run has a MaxCycles
	// budget, and as a grossly inflated cycle count otherwise.
	KindStall
)

// String spells the kind as the plan grammar does.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindStall:
		return "stall"
	}
	return "kind?"
}

// ParseKind resolves a kind name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return KindPanic, nil
	case "error":
		return KindError, nil
	case "stall":
		return KindStall, nil
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q (want panic, error or stall)", s)
}

// StallCycles is the simulated-cycle charge of one injected stall: large
// enough that any realistic MaxCycles budget trips at the next quantum
// check, small enough that a few stalls cannot overflow the clock.
const StallCycles = 1 << 34

// Fault is the typed error every injected fault surfaces as — returned
// from error seams, panicked (and recovered into runner.CellError) from
// the others. errors.As against *Fault identifies injected faults
// through any wrapping.
type Fault struct {
	Seam Seam
	Kind Kind
	// Count is the seam crossing at which the fault fired (1-based).
	Count uint64
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s injected at %s seam (crossing %d)", f.Kind, f.Seam, f.Count)
}

// Rule is one fault to inject: Kind at the Count-th crossing of Seam.
type Rule struct {
	Seam  Seam
	Kind  Kind
	Count uint64 // 1-based crossing; always resolved (ParsePlan derives omitted counts)
}

// String renders the rule in plan grammar.
func (r Rule) String() string {
	return fmt.Sprintf("%s:%s@%d", r.Kind, r.Seam, r.Count)
}

// Plan is a parsed, immutable chaos plan: the seed it was derived under
// and the fully resolved rules. One Plan is shared by every cell of a
// sweep; per-run trigger state lives in the Injector.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// derivedCountRange bounds seed-derived trigger counts. Small counts
// keep derived rules likely to actually fire on short workloads.
const derivedCountRange = 64

// splitmix64 is the standard splitmix64 mixing function — the pure,
// allocation-free PRNG step behind seed-derived trigger counts.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParsePlan parses the -chaos grammar:
//
//	[seed=N;]KIND:SEAM[@COUNT][;KIND:SEAM[@COUNT]...]
//
// KIND is panic, error or stall; SEAM is provider, guest, drain, worker,
// analysis or reconcile; COUNT is the 1-based seam crossing to fire on. A rule with
// no @COUNT gets a deterministic count derived from the seed and the
// rule's position via splitmix64, so "seed=7;panic:analysis" names one
// exact fault without spelling the crossing. The empty string is the
// empty plan (nil, nil): no injection, byte-identical behaviour.
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{}
	parts := strings.Split(s, ";")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			if i != 0 {
				return nil, fmt.Errorf("faultinject: seed= must be the first plan element, got %q at position %d", part, i)
			}
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		kindStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad rule %q (want KIND:SEAM[@COUNT])", part)
		}
		kind, err := ParseKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, err
		}
		seamStr, countStr, hasCount := strings.Cut(rest, "@")
		seam, err := ParseSeam(strings.TrimSpace(seamStr))
		if err != nil {
			return nil, err
		}
		r := Rule{Seam: seam, Kind: kind}
		if hasCount {
			n, err := strconv.ParseUint(strings.TrimSpace(countStr), 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faultinject: bad crossing count %q in %q (want a positive integer)", countStr, part)
			}
			r.Count = n
		} else {
			r.Count = 1 + splitmix64(p.Seed+uint64(len(p.Rules)))%derivedCountRange
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faultinject: plan %q names no rules", s)
	}
	return p, nil
}

// Empty reports whether the plan injects nothing. Nil-safe.
func (p *Plan) Empty() bool { return p == nil || len(p.Rules) == 0 }

// String renders the plan in canonical grammar with every count
// resolved; ParsePlan(p.String()) reproduces p exactly.
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, r := range p.Rules {
		b.WriteByte(';')
		b.WriteString(r.String())
	}
	return b.String()
}

// trigger is one rule's per-run state: each rule fires at most once.
type trigger struct {
	kind  Kind
	at    uint64
	fired bool
}

// Injector holds one run's injection state: per-seam crossing counters
// and one-shot triggers. Build one per System (never share across cells
// — the counters are the determinism anchor). Not safe for concurrent
// use; a System's seams all fire from its single simulation goroutine.
type Injector struct {
	charge   func(uint64) // simulated-clock charge hook for stalls
	counts   [numSeams]uint64
	triggers [numSeams][]trigger
}

// NewInjector builds a fresh Injector over the plan. charge receives
// StallCycles for each stall-kind fault (the System wires its simulated
// clock; nil drops stall charges). Returns nil for an empty plan, so a
// nil check is the whole "is chaos on" test. Nil-safe on p.
func (p *Plan) NewInjector(charge func(uint64)) *Injector {
	if p.Empty() {
		return nil
	}
	in := &Injector{charge: charge}
	for _, r := range p.Rules {
		in.triggers[r.Seam] = append(in.triggers[r.Seam], trigger{kind: r.Kind, at: r.Count})
	}
	return in
}

// Fire records one crossing of seam and manifests any rule armed for
// that crossing: panic kind panics with a *Fault, error kind returns
// it, stall kind charges StallCycles and continues. Each rule fires at
// most once. Nil-safe (a nil Injector never injects).
func (in *Injector) Fire(seam Seam) error {
	if in == nil {
		return nil
	}
	in.counts[seam]++
	n := in.counts[seam]
	for i := range in.triggers[seam] {
		t := &in.triggers[seam][i]
		if t.fired || t.at != n {
			continue
		}
		t.fired = true
		f := &Fault{Seam: seam, Kind: t.kind, Count: n}
		switch t.kind {
		case KindPanic:
			panic(f)
		case KindStall:
			if in.charge != nil {
				in.charge(StallCycles)
			}
		default: // KindError
			return f
		}
	}
	return nil
}

// Crossings reports how many times seam has fired so far (tests).
func (in *Injector) Crossings(seam Seam) uint64 {
	if in == nil {
		return 0
	}
	return in.counts[seam]
}

package stats

import "time"

// Tally is the lock-free per-worker accumulator used by the concurrent
// experiment runner (internal/runner): each worker owns one Tally and adds
// its cells to it without synchronization; after the pool joins, the
// shards are combined with Merge. Every field is an integer sum, so the
// merged totals are identical for any sharding and any merge order —
// the property the runner's determinism contract relies on.
type Tally struct {
	// Runs counts completed cells.
	Runs uint64
	// Cycles sums simulated cycles over all cells.
	Cycles uint64
	// Instructions and MemRefs sum the engine's retirement counters.
	Instructions uint64
	MemRefs      uint64
	// InstrumentedExecs sums executions of analysis-instrumented
	// instructions (Table 2 column 2).
	InstrumentedExecs uint64
	// SharedAccesses sums accesses that targeted shared pages (Figure 6
	// numerator).
	SharedAccesses uint64
	// Races sums reported races across all cells.
	Races uint64
	// Wall sums simulator wall-clock. It is the only field that is not
	// deterministic across runs; deterministic reports must ignore it.
	Wall time.Duration
}

// RunCounters is the narrow seam a completed run exposes to the tally —
// core.Result implements it — so stats stays free of upward dependencies.
type RunCounters interface {
	TallyCounters() (cycles, instructions, memRefs, instrumented, shared, races uint64)
}

// Add accumulates one completed run into the tally.
func (t *Tally) Add(res RunCounters, wall time.Duration) {
	cycles, instrs, memRefs, instrumented, shared, races := res.TallyCounters()
	t.Runs++
	t.Cycles += cycles
	t.Instructions += instrs
	t.MemRefs += memRefs
	t.InstrumentedExecs += instrumented
	t.SharedAccesses += shared
	t.Races += races
	t.Wall += wall
}

// Merge folds another shard into t. Integer sums only: merging shards in
// any order yields the same totals.
func (t *Tally) Merge(o Tally) {
	t.Runs += o.Runs
	t.Cycles += o.Cycles
	t.Instructions += o.Instructions
	t.MemRefs += o.MemRefs
	t.InstrumentedExecs += o.InstrumentedExecs
	t.SharedAccesses += o.SharedAccesses
	t.Races += o.Races
	t.Wall += o.Wall
}

// Package stats provides the simulated cycle clock and the cost model that
// turns mechanism events (instructions, faults, hypercalls, instrumentation)
// into simulated time.
//
// The paper evaluates Aikido by wall-clock slowdown on a Xeon X7550. A Go
// reimplementation cannot reproduce those absolute numbers (the substrate is
// a simulator), so simulated cycles are the primary metric: every component
// charges its events to one shared Clock using the costs configured here.
// The *ratios* between runs — who wins, by what factor — are then stable,
// machine-independent, and directly comparable to the shapes in Figure 5,
// Figure 6 and Table 1. See DESIGN.md §2.
package stats

import (
	"fmt"
	"math"
)

// CostModel assigns simulated cycle costs to mechanism events. The defaults
// (DefaultCosts) are loosely calibrated so that a FastTrack-style analysis
// of every memory access lands in the paper's 50–200× slowdown band and a
// hardware page fault costs a few thousand instructions, as on real x86.
type CostModel struct {
	// NativeInstr is the base cost of retiring one instruction.
	NativeInstr uint64

	// DispatchBlock is the code-cache dispatch cost for an unlinked block
	// transition (indirect lookup); DispatchLinked is the cost when the
	// previous block was directly linked to this one; DispatchTrace is
	// the cost within a hot trace.
	DispatchBlock  uint64
	DispatchLinked uint64
	DispatchTrace  uint64

	// BuildBlockBase/BuildPerInstr model JIT-compiling a basic block into
	// the code cache; FlushBlock models deleting one cached block.
	BuildBlockBase uint64
	BuildPerInstr  uint64
	FlushBlock     uint64

	// Fault is the end-to-end cost of a page fault delivered to the guest
	// userspace handler through the hypervisor (§3.2.5).
	Fault uint64
	// Hypercall is one AikidoLib hypercall.
	Hypercall uint64
	// ShadowFill is one lazy shadow-page-table population (hidden fault)
	// under shadow paging; EPTWalk is the two-dimensional guest+EPT walk
	// paid on a TLB miss under nested paging (§3.2.2). The EPT walk is
	// pricier per miss, but nested paging never pays PTUpdateTrap.
	ShadowFill uint64
	EPTWalk    uint64
	// PTUpdateTrap is the VM exit + emulation cost of one trapped guest
	// page-table write under shadow paging (§3.2.2); nested paging
	// updates guest page tables without hypervisor involvement.
	PTUpdateTrap uint64
	// ShadowRootSwitch is the shadow-root (CR3-analogue) swap on a
	// context switch under shadow paging; EPTPSwitch is the (cheaper)
	// EPT-pointer switch under nested paging.
	ShadowRootSwitch uint64
	EPTPSwitch       uint64
	// KernelEmulation is one guest-kernel instruction emulated by the
	// hypervisor (§3.2.6).
	KernelEmulation uint64
	// ContextSwitch is a guest thread switch (including the VM exit).
	ContextSwitch uint64
	// Syscall is the base guest syscall cost.
	Syscall uint64
	// ProcessSwitch is a full process context switch (address-space
	// change), paid per switch by the DTHREADS-style processes-as-threads
	// protection provider (§7.1).
	ProcessSwitch uint64
	// Fork is one process creation, paid per "thread" by the
	// processes-as-threads provider.
	Fork uint64
	// ThreadTableSetup is the cost of cloning a per-thread page table at
	// thread creation, paid by the dOS-style modified-kernel provider
	// (§7.1, ref [3]).
	ThreadTableSetup uint64
	// KernelCheck is the modified kernel's ownership-table consultation
	// when it touches a per-thread-protected page on a thread's behalf —
	// the dOS analogue of AikidoVM's much dearer KernelEmulation (§3.2.6).
	KernelCheck uint64

	// ShadowTranslate is Umbra's app→shadow translation when the inlined
	// memoization cache hits; ShadowTranslateMiss when the lean-procedure
	// lookup runs instead (§2.2).
	ShadowTranslate     uint64
	ShadowTranslateMiss uint64
	// MirrorRedirect is the extra cost of rewriting an access to its
	// mirror address (effective-address patch or base translation).
	MirrorRedirect uint64
	// SharedCheck is the emitted shared/private branch for indirect
	// instructions (Figure 4).
	SharedCheck uint64

	// AnalysisFast is the analysis tool's per-access cost on its fast
	// path (FastTrack same-epoch); AnalysisSlow on its slow path (vector
	// clock comparison/promotion); AnalysisSync per synchronization
	// event.
	AnalysisFast uint64
	AnalysisSlow uint64
	AnalysisSync uint64
	// AnalysisContention models metadata contention: extra cycles per
	// analyzed access, scaled by (liveThreads-1)^1.3 (cache-line
	// ping-pong on shadow metadata grows superlinearly with sharers).
	// This is what makes detector overheads grow with thread count, the
	// effect visible in Table 1.
	AnalysisContention uint64
	// MirrorContention models coherence traffic on mirror pages: every
	// redirected access targets the mirror copy of *shared* data, so
	// these lines ping-pong between all cores; charged per redirect,
	// scaled by (liveThreads-1)^2. This term is why Aikido's advantage
	// shrinks at high thread counts on heavily-sharing benchmarks
	// (the fluidanimate row of Table 1).
	MirrorContention uint64
	// InstrumentedExec is the per-execution cost of the code AikidoSD
	// emits around an instrumented instruction (Figure 4): the inlined
	// app→shadow translation, the shared/private branch for indirect
	// accesses, the mirror-address computation, and the code-cache bloat
	// of the re-JITed block. Charged only by the Aikido path; the
	// full-instrumentation baseline pays ShadowTranslate inline instead.
	InstrumentedExec uint64

	// AnalysisDispatch models the per-event transition into the analysis
	// runtime under inline dispatch — the DBI clean-call economics (§2.1):
	// spilling application registers, switching to the analysis context,
	// and the i-cache/d-cache pollution of bouncing between translated
	// code and analysis code on every access. Charged per access per
	// hosted analysis. The default model keeps it 0 (its effect is folded
	// into the Analysis* terms, and every committed BENCH snapshot was
	// calibrated without it); DispatchCosts turns it on to measure what
	// deferred batching amortizes.
	AnalysisDispatch uint64
	// BatchDrainBase is the per-analysis cost of entering the analysis
	// runtime once per drained batch under deferred dispatch, and
	// BatchPerRecord the hand-off inside the drain loop, charged per
	// record per analysis (each analysis's batch loop walks the records) —
	// together the amortized counterpart of AnalysisDispatch (one
	// transition per batch, then a tight loop with warm caches). Both
	// default to 0 for the same calibration reason.
	BatchDrainBase uint64
	BatchPerRecord uint64
	// BatchGroupBase is the per-analysis cost of opening one page group
	// under vectorized dispatch: hoisting the shadow-chunk pointer and
	// epoch clock for the group's page into registers. Charged per group
	// per analysis by the grouped drain path only.
	BatchGroupBase uint64
	// BatchCoalescedRecord is the cost of retiring one record by a
	// vectorized run-length tail: the hoisted state is already in
	// registers, so a record costs one compare-and-count instead of a
	// full per-access hook. It doubles as the vector-charging switch:
	// when 0 (DefaultCosts), vectorized kernels charge the exact scalar
	// per-record costs so every byte-identity suite sees identical
	// cycles; when nonzero (DispatchCosts), a coalesced record charges
	// this instead of its AnalysisFast/Slow + contention share — the
	// amortization BENCH_7 measures. Scalar-fallback records always pay
	// full scalar freight (plus BatchPerRecord hand-off when nonzero).
	BatchCoalescedRecord uint64
	// ParallelDrainBase and ParallelShardJoin model a page-sharded
	// parallel drain's coordination overhead, and together form the
	// parallel-charging switch. When both are 0 (DefaultCosts), a
	// parallel drain folds the *sum* of the per-shard cycle deltas into
	// the main clock — order-independent arithmetic, so cycles stay
	// byte-identical to vectorized and inline dispatch at any worker
	// count. When either is nonzero (DispatchCosts), a drain instead
	// charges ParallelDrainBase (fan-out/join fixed cost) plus
	// ParallelShardJoin per shard that received groups (reconciling one
	// shard's findings and counters; an idle shard leaves nothing to
	// reconcile) plus the *maximum* per-shard delta — the critical-path
	// model of genuinely concurrent shards that BENCH_8 measures.
	ParallelDrainBase uint64
	ParallelShardJoin uint64
	// PhaseReconcileBase and PhaseBankRecord model Doppel-style split
	// phases for hot pages, and together form the phase-charging switch.
	// During a split phase, an access to a hot page is *banked* as a
	// compact record in the acting thread's private delta ring instead of
	// entering the analysis runtime; PhaseBankRecord is that ring store —
	// one struct write into thread-local memory, no clean call, no shared
	// metadata touched — charged once per banked record (banking happens
	// once regardless of how many analyses are hosted). At a phase flip
	// (sync hook, VMA change, epoch sweep — the existing full-barrier
	// drain points) the banked deltas k-way-merge back into canonical
	// global order and replay through the analyses; PhaseReconcileBase is
	// the per-analysis cost of entering that reconciliation merge.
	// When both are 0 (DefaultCosts) nothing phase-related is charged, so
	// workloads whose pages never run hot stay byte-identical — findings,
	// counters and cycles — with phases enabled. Under DispatchCosts the
	// pair prices what split phases amortize: the per-access
	// AnalysisDispatch clean call (150 × N analyses) that hot many-writer
	// pages otherwise pay forever — the falseshare cell BENCH_9 finally
	// moves above 1.00×.
	PhaseReconcileBase uint64
	PhaseBankRecord    uint64
}

// DefaultCosts returns the calibrated default cost model.
func DefaultCosts() CostModel {
	return CostModel{
		NativeInstr:         1,
		DispatchBlock:       4,
		DispatchLinked:      1,
		DispatchTrace:       0,
		BuildBlockBase:      200,
		BuildPerInstr:       20,
		FlushBlock:          150,
		Fault:               3000,
		Hypercall:           400,
		ShadowFill:          40,
		EPTWalk:             120,
		PTUpdateTrap:        800,
		ShadowRootSwitch:    60,
		EPTPSwitch:          40,
		KernelEmulation:     1500,
		ContextSwitch:       300,
		Syscall:             150,
		ProcessSwitch:       600,
		Fork:                25000,
		ThreadTableSetup:    5000,
		KernelCheck:         40,
		ShadowTranslate:     10,
		ShadowTranslateMiss: 60,
		MirrorRedirect:      3,
		SharedCheck:         3,
		AnalysisFast:        100,
		AnalysisSlow:        300,
		AnalysisSync:        120,
		AnalysisContention:  20,
		MirrorContention:    5,
		InstrumentedExec:    40,
	}
}

// DispatchCosts returns the default model with the analysis-dispatch
// transition terms enabled: the cost model the DeferredAmortization
// experiment (BENCH_5.json) measures under. Inline dispatch pays one
// AnalysisDispatch transition per access per hosted analysis; deferred
// dispatch pays one BatchDrainBase per analysis per drain plus a
// BatchPerRecord hand-off per record — the batching amortization. The
// magnitudes follow the DBI clean-call literature: a full-context clean
// call costs on the order of a hundred cycles, while an element of an
// unrolled processing loop costs a few.
func DispatchCosts() CostModel {
	c := DefaultCosts()
	c.AnalysisDispatch = 150
	// Entering a drain loop costs the same one clean call the inline path
	// pays per access — the batching win is that the remaining records
	// ride a register-resident loop at a few cycles each.
	c.BatchDrainBase = 120
	c.BatchPerRecord = 8
	// Vectorized-kernel terms: opening a page group costs a couple of
	// dependent loads (chunk pointer, thread clock) and retiring a record
	// whose state is already hoisted costs one compare + counter update —
	// the per-element economics of an unrolled SIMD-style loop over
	// uniform metadata.
	c.BatchGroupBase = 24
	c.BatchCoalescedRecord = 4
	// Parallel-drain terms: dispatching group ranges to sleeping workers
	// and joining them costs a couple of cache-line hand-offs, and folding
	// one shard's counters back costs a short loop over its findings. Kept
	// small so shard-imbalanced (Zipf-skewed) workloads still amortize.
	c.ParallelDrainBase = 60
	c.ParallelShardJoin = 12
	// Phase terms: banking one record into a thread-private delta ring is
	// one struct store into a warm cache line (no clean call, no shared
	// state), and entering the reconciliation merge at a phase boundary
	// costs the same order as any other batched entry into the analysis
	// runtime.
	c.PhaseReconcileBase = 120
	c.PhaseBankRecord = 3
	return c
}

// Clock accumulates simulated cycles. All components of one System share a
// single Clock.
type Clock struct {
	cycles uint64
}

// Charge adds n cycles.
func (c *Clock) Charge(n uint64) { c.cycles += n }

// Cycles returns the accumulated simulated time.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles = 0 }

// Slowdown returns the ratio of this clock to a baseline cycle count,
// the "slowdown vs native" metric of Figure 5 (lower is better).
func (c *Clock) Slowdown(baseline uint64) float64 {
	if baseline == 0 {
		return 0
	}
	return float64(c.cycles) / float64(baseline)
}

// Ratio is a convenience for formatting slowdown-style numbers.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Geomean returns the geometric mean of xs (ignoring non-positive values,
// which would otherwise poison the product).
func Geomean(xs []float64) float64 {
	prod := 1.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// FormatX renders a slowdown like "76.25x".
func FormatX(v float64) string { return fmt.Sprintf("%.2fx", v) }

// FormatPct renders a fraction as a percentage like "12.3%".
func FormatPct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

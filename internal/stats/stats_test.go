package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockChargeAndReset(t *testing.T) {
	var c Clock
	c.Charge(10)
	c.Charge(5)
	if c.Cycles() != 15 {
		t.Errorf("Cycles = %d", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestSlowdown(t *testing.T) {
	var c Clock
	c.Charge(300)
	if got := c.Slowdown(100); got != 3.0 {
		t.Errorf("Slowdown = %v", got)
	}
	if c.Slowdown(0) != 0 {
		t.Error("zero baseline not guarded")
	}
	if Ratio(10, 4) != 2.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-9 {
		t.Errorf("Geomean(5) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean != 0")
	}
	// Non-positive values are skipped, not poisonous.
	if g := Geomean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean with junk = %v", g)
	}
}

func TestGeomeanBounds(t *testing.T) {
	// Property: min ≤ geomean ≤ max for positive inputs.
	prop := func(xs []uint8) bool {
		var vals []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			v := float64(x) + 1
			vals = append(vals, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(vals) == 0 {
			return true
		}
		g := Geomean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatters(t *testing.T) {
	if FormatX(76.254) != "76.25x" {
		t.Errorf("FormatX = %q", FormatX(76.254))
	}
	if FormatPct(0.123) != "12.30%" {
		t.Errorf("FormatPct = %q", FormatPct(0.123))
	}
}

func TestDefaultCostsSanity(t *testing.T) {
	c := DefaultCosts()
	if c.NativeInstr != 1 {
		t.Error("native instruction must cost 1 cycle (the normalization unit)")
	}
	// Structural relations the experiments rely on.
	if c.Fault <= c.Hypercall {
		t.Error("a fault must cost more than a hypercall")
	}
	if c.ShadowTranslateMiss <= c.ShadowTranslate {
		t.Error("translation miss must cost more than a hit")
	}
	if c.AnalysisSlow <= c.AnalysisFast {
		t.Error("analysis slow path must cost more than the fast path")
	}
	if c.DispatchLinked >= c.DispatchBlock {
		t.Error("linked dispatch must be cheaper than a lookup")
	}
}

package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func TestProtAllows(t *testing.T) {
	cases := []struct {
		p    Prot
		a    Access
		user bool
		want bool
	}{
		{ProtRW, AccessRead, true, true},
		{ProtRW, AccessWrite, true, true},
		{ProtRO, AccessRead, true, true},
		{ProtRO, AccessWrite, true, false},
		{ProtNone, AccessRead, true, false},
		{ProtNone, AccessWrite, false, false},
		// Kernel-only page (USER cleared): kernel may access, user may not.
		// This is the AikidoVM §3.2.6 trick.
		{ProtRead | ProtWrite, AccessRead, true, false},
		{ProtRead | ProtWrite, AccessRead, false, true},
		{ProtRead | ProtWrite, AccessWrite, false, true},
	}
	for _, c := range cases {
		if got := c.p.Allows(c.a, c.user); got != c.want {
			t.Errorf("%s.Allows(%s, user=%v) = %v, want %v", c.p, c.a, c.user, got, c.want)
		}
	}
}

func TestMapWalkUnmap(t *testing.T) {
	m := vm.NewMachine()
	pt := New()
	f := m.AllocFrame()
	pt.Map(5, f, ProtRW)

	pte, fault := pt.Walk(5*vm.PageSize+100, AccessWrite, true)
	if fault != nil {
		t.Fatalf("unexpected fault: %v", fault)
	}
	if pte.Frame != f {
		t.Errorf("frame = %d, want %d", pte.Frame, f)
	}

	if _, fault := pt.Walk(6*vm.PageSize, AccessRead, true); fault == nil || !fault.Unmapped {
		t.Error("walk of unmapped page must fault with Unmapped")
	}

	pt.SetProt(5, ProtRO)
	if _, fault := pt.Walk(5*vm.PageSize, AccessWrite, true); fault == nil || fault.Unmapped {
		t.Error("write to RO page must be a protection fault")
	}
	if _, fault := pt.Walk(5*vm.PageSize, AccessRead, true); fault != nil {
		t.Errorf("read of RO page faulted: %v", fault)
	}

	if _, ok := pt.Unmap(5); !ok {
		t.Error("unmap of mapped page failed")
	}
	if _, ok := pt.Unmap(5); ok {
		t.Error("double unmap succeeded")
	}
}

type recordingListener struct {
	events []struct {
		vpn      uint64
		old, new PTE
	}
}

func (r *recordingListener) PTEUpdated(vpn uint64, old, new PTE) {
	r.events = append(r.events, struct {
		vpn      uint64
		old, new PTE
	}{vpn, old, new})
}

func TestListenerSeesAllMutations(t *testing.T) {
	m := vm.NewMachine()
	pt := New()
	rec := &recordingListener{}
	pt.SetListener(rec)

	f := m.AllocFrame()
	pt.Map(9, f, ProtRW)
	pt.SetProt(9, ProtNone)
	pt.Unmap(9)

	if len(rec.events) != 3 {
		t.Fatalf("listener saw %d events, want 3", len(rec.events))
	}
	if rec.events[0].old != (PTE{}) || rec.events[0].new.Frame != f {
		t.Error("map event wrong")
	}
	if rec.events[1].new.Prot != ProtNone || rec.events[1].old.Prot != ProtRW {
		t.Error("prot event wrong")
	}
	if rec.events[2].new != (PTE{}) {
		t.Error("unmap event wrong")
	}
	if pt.Updates != 3 {
		t.Errorf("Updates = %d, want 3", pt.Updates)
	}
}

func TestSetProtUnmapped(t *testing.T) {
	pt := New()
	if pt.SetProt(1, ProtRW) {
		t.Error("SetProt of unmapped page reported success")
	}
}

func TestVPNsSorted(t *testing.T) {
	m := vm.NewMachine()
	pt := New()
	for _, vpn := range []uint64{42, 7, 99, 1} {
		pt.Map(vpn, m.AllocFrame(), ProtRW)
	}
	got := pt.VPNs()
	want := []uint64{1, 7, 42, 99}
	if len(got) != len(want) {
		t.Fatalf("VPNs len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VPNs = %v, want %v", got, want)
		}
	}
}

func TestMapInvalidFramePanics(t *testing.T) {
	pt := New()
	defer func() {
		if recover() == nil {
			t.Error("mapping NoFrame did not panic")
		}
	}()
	pt.Map(1, vm.NoFrame, ProtRW)
}

func TestWalkFaultCarriesAddrAndAccess(t *testing.T) {
	pt := New()
	_, fault := pt.Walk(0xdead000, AccessWrite, true)
	if fault == nil {
		t.Fatal("expected fault")
	}
	if fault.Addr != 0xdead000 || fault.Access != AccessWrite {
		t.Errorf("fault = %+v", fault)
	}
	if fault.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestProtStringAndAllowsAgree(t *testing.T) {
	// Property: a protection allows a user read iff both R and U bits set;
	// a user write additionally needs W.
	prop := func(bits uint8) bool {
		p := Prot(bits & 7)
		r := p.Allows(AccessRead, true)
		w := p.Allows(AccessWrite, true)
		wantR := p&ProtRead != 0 && p&ProtUser != 0
		wantW := wantR && p&ProtWrite != 0
		return r == wantR && w == wantW
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Package pagetable implements the guest operating system's page tables:
// virtual page number → physical frame mappings with x86-style protection
// bits (present/readable, writable, user-accessible).
//
// A real hypervisor learns about guest page-table updates by write-protecting
// the pages that hold them and trapping the writes (paper §3.2.2). The
// simulation expresses the same interposition point directly: a Table
// accepts a Listener, and every mutation is reported to it. AikidoVM
// registers itself as the listener and updates its per-thread shadow page
// tables in response, exactly as the paper's hypervisor does on a trapped
// page-table write.
package pagetable

import (
	"fmt"
	"sort"

	"repro/internal/vm"
)

// Prot is a page protection bit set.
type Prot uint8

// Protection bits, mirroring the x86 PTE bits the paper manipulates
// (present ⇒ readable, writable, user-accessible; §3.2.2 and §3.2.6).
const (
	// ProtRead marks the page present and readable.
	ProtRead Prot = 1 << iota
	// ProtWrite marks the page writable.
	ProtWrite
	// ProtUser marks the page accessible from guest userspace. AikidoVM
	// clears this bit when it temporarily unprotects a page for the guest
	// kernel, so the next userspace access still faults (§3.2.6).
	ProtUser

	// ProtNone denies all access.
	ProtNone Prot = 0
	// ProtRW is the common userspace data protection.
	ProtRW = ProtRead | ProtWrite | ProtUser
	// ProtRO is read-only userspace protection.
	ProtRO = ProtRead | ProtUser
)

// Allows reports whether the protection permits the access from userspace
// (user=true) or kernel mode.
func (p Prot) Allows(a Access, user bool) bool {
	if p&ProtRead == 0 {
		return false
	}
	if a == AccessWrite && p&ProtWrite == 0 {
		return false
	}
	if user && p&ProtUser == 0 {
		return false
	}
	return true
}

// String renders the protection like "rwu" / "r--".
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtUser != 0 {
		b[2] = 'u'
	}
	return string(b)
}

// Access is a memory access kind.
type Access uint8

// Access kinds.
const (
	// AccessRead is a data load.
	AccessRead Access = iota
	// AccessWrite is a data store.
	AccessWrite
)

// String returns "read" or "write".
func (a Access) String() string {
	if a == AccessWrite {
		return "write"
	}
	return "read"
}

// PTE is one page-table entry.
type PTE struct {
	Frame vm.FrameID
	Prot  Prot
}

// Listener observes page-table mutations. In the real system this is the
// hypervisor's write-protection trap on guest page-table pages.
type Listener interface {
	// PTEUpdated is called after the entry for vpn changes. old is the
	// previous entry (zero PTE if the page was unmapped) and new the
	// current one (zero PTE if the page is being unmapped).
	PTEUpdated(vpn uint64, old, new PTE)
}

// Chunking of the VPN space: the guest address space is sparse (code,
// data, heap, mmap, and stacks sit at widely separated bases), but each
// populated area is dense, so the table stores aligned chunks of inline
// PTEs keyed by the high VPN bits — a walk is a chunk fetch (usually served
// by the one-entry last-chunk cache) plus an index, not a map probe per
// page. A PTE with Frame == vm.NoFrame marks an unmapped slot: Map rejects
// NoFrame, so the zero value can never alias a real mapping.
const (
	chunkBits = 9 // 512 pages = 2 MiB of guest address space per chunk
	chunkLen  = 1 << chunkBits
)

// ptChunk holds the entries for one aligned 2 MiB span of page numbers.
type ptChunk [chunkLen]PTE

// Table is one guest page table (one per guest process).
type Table struct {
	chunks   map[uint64]*ptChunk
	lastKey  uint64
	last     *ptChunk
	mapped   int
	listener Listener

	// Updates counts mutations; each one would cost a hypervisor trap in
	// the real system.
	Updates uint64
}

// New returns an empty page table.
func New() *Table {
	return &Table{chunks: make(map[uint64]*ptChunk)}
}

// SetListener installs the mutation observer (at most one; the hypervisor).
func (t *Table) SetListener(l Listener) { t.listener = l }

// chunk returns the chunk covering vpn through the last-chunk cache,
// allocating it when alloc is set; nil when absent and alloc is false.
func (t *Table) chunk(vpn uint64, alloc bool) *ptChunk {
	key := vpn >> chunkBits
	if c := t.last; c != nil && key == t.lastKey {
		return c
	}
	c := t.chunks[key]
	if c == nil {
		if !alloc {
			return nil
		}
		c = new(ptChunk)
		t.chunks[key] = c
	}
	t.lastKey, t.last = key, c
	return c
}

// Lookup returns the entry for vpn.
func (t *Table) Lookup(vpn uint64) (PTE, bool) {
	c := t.chunk(vpn, false)
	if c == nil {
		return PTE{}, false
	}
	pte := c[vpn&(chunkLen-1)]
	return pte, pte.Frame != vm.NoFrame
}

// Map installs a mapping for vpn. Remapping an existing vpn is allowed (it
// models mmap(MAP_FIXED) over an existing region).
func (t *Table) Map(vpn uint64, frame vm.FrameID, prot Prot) {
	if frame == vm.NoFrame {
		panic(fmt.Sprintf("pagetable: mapping vpn %#x to the invalid frame", vpn))
	}
	c := t.chunk(vpn, true)
	old := c[vpn&(chunkLen-1)]
	if old.Frame == vm.NoFrame {
		t.mapped++
	}
	pte := PTE{Frame: frame, Prot: prot}
	c[vpn&(chunkLen-1)] = pte
	t.Updates++
	if t.listener != nil {
		t.listener.PTEUpdated(vpn, old, pte)
	}
}

// Unmap removes the mapping for vpn, returning the old entry.
func (t *Table) Unmap(vpn uint64) (PTE, bool) {
	c := t.chunk(vpn, false)
	if c == nil {
		return PTE{}, false
	}
	old := c[vpn&(chunkLen-1)]
	if old.Frame == vm.NoFrame {
		return PTE{}, false
	}
	c[vpn&(chunkLen-1)] = PTE{}
	t.mapped--
	t.Updates++
	if t.listener != nil {
		t.listener.PTEUpdated(vpn, old, PTE{})
	}
	return old, true
}

// SetProt changes the protection of an existing mapping. It reports whether
// the vpn was mapped.
func (t *Table) SetProt(vpn uint64, prot Prot) bool {
	c := t.chunk(vpn, false)
	if c == nil {
		return false
	}
	old := c[vpn&(chunkLen-1)]
	if old.Frame == vm.NoFrame {
		return false
	}
	pte := PTE{Frame: old.Frame, Prot: prot}
	c[vpn&(chunkLen-1)] = pte
	t.Updates++
	if t.listener != nil {
		t.listener.PTEUpdated(vpn, old, pte)
	}
	return true
}

// Len returns the number of mapped pages.
func (t *Table) Len() int { return t.mapped }

// VPNs returns all mapped virtual page numbers in ascending order. Used by
// the hypervisor to build a fresh shadow table for a new thread and by the
// sharing detector to protect "all mapped pages" at startup (§3.3.2).
func (t *Table) VPNs() []uint64 {
	out := make([]uint64, 0, t.mapped)
	for key, c := range t.chunks {
		for i, pte := range c {
			if pte.Frame != vm.NoFrame {
				out = append(out, key<<chunkBits|uint64(i))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Walk translates a guest virtual address for the given access, returning
// the PTE. A nil *Fault means the access is permitted.
func (t *Table) Walk(addr uint64, a Access, user bool) (PTE, *Fault) {
	vpn := vm.PageNum(addr)
	c := t.chunk(vpn, false)
	if c == nil {
		return PTE{}, &Fault{Addr: addr, Access: a, Unmapped: true}
	}
	pte := c[vpn&(chunkLen-1)]
	if pte.Frame == vm.NoFrame {
		return PTE{}, &Fault{Addr: addr, Access: a, Unmapped: true}
	}
	if !pte.Prot.Allows(a, user) {
		return PTE{}, &Fault{Addr: addr, Access: a, Prot: pte.Prot}
	}
	return pte, nil
}

// Fault describes a page fault raised during translation.
type Fault struct {
	// Addr is the faulting guest virtual address.
	Addr uint64
	// Access is the attempted access kind.
	Access Access
	// Unmapped is true when no mapping exists at all.
	Unmapped bool
	// Prot is the protection that denied the access (when mapped).
	Prot Prot
}

// Error implements error.
func (f *Fault) Error() string {
	if f.Unmapped {
		return fmt.Sprintf("page fault: %s of unmapped address %#x", f.Access, f.Addr)
	}
	return fmt.Sprintf("page fault: %s of %#x denied by prot %s", f.Access, f.Addr, f.Prot)
}

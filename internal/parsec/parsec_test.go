package parsec

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fasttrack"
	"repro/internal/workload"
)

func TestAllBenchmarksValidate(t *testing.T) {
	bs := All()
	if len(bs) != 10 {
		t.Fatalf("benchmarks = %d, want 10", len(bs))
	}
	for _, b := range bs {
		if _, err := b.Build(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.Spec.Threads != 8 {
			t.Errorf("%s: default threads = %d, want 8", b.Name, b.Spec.Threads)
		}
		if b.Paper.MemRefs == 0 || b.Paper.Instrumented == 0 {
			t.Errorf("%s: paper row incomplete", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fluidanimate")
	if err != nil || b.Name != "fluidanimate" {
		t.Fatalf("ByName: %v %v", b.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
	if len(Names()) != 10 {
		t.Error("Names() wrong length")
	}
}

func TestWithThreadsAndScale(t *testing.T) {
	b, _ := ByName("vips")
	b2 := b.WithThreads(2).WithScale(0.5)
	if b2.Spec.Threads != 2 {
		t.Error("WithThreads did not apply")
	}
	if b2.Spec.Iters != b.Spec.Iters/2 {
		t.Errorf("WithScale: %d, want %d", b2.Spec.Iters, b.Spec.Iters/2)
	}
	// Original untouched (value semantics).
	if b.Spec.Threads != 8 {
		t.Error("WithThreads mutated the original")
	}
	// Scale floor.
	if tiny := b.WithScale(0.000001); tiny.Spec.Iters < 1 {
		t.Error("WithScale produced zero iterations")
	}
}

func TestSpecPredictionsMatchPaperRatios(t *testing.T) {
	// Each model's analytic shared fraction must be within 2 points of
	// the paper's Figure 6 value — this is the calibration contract.
	for _, b := range All() {
		want := b.Paper.SharedFrac()
		got := b.Spec.ExpectedSharedFraction()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: spec shared fraction %.3f, paper %.3f", b.Name, got, want)
		}
	}
}

func TestBenchmarksRunUnderAikido(t *testing.T) {
	// Small-scale smoke run of every model under the full stack.
	for _, b := range All() {
		b := b.WithScale(0.1)
		prog, err := workload.Build(b.Spec)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.ExitCode != 0 {
			t.Errorf("%s: exit code %d", b.Name, res.ExitCode)
		}
		if res.Engine.MemRefs == 0 {
			t.Errorf("%s: no memory accesses", b.Name)
		}
	}
}

func TestMeasuredSharedFractionTracksPaper(t *testing.T) {
	// At moderate scale, the Figure 6 measurement must land within 3
	// points of the paper on every benchmark.
	for _, b := range All() {
		b := b.WithScale(0.5)
		prog, err := workload.Build(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		got := res.SharedAccessFraction()
		want := b.Paper.SharedFrac()
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s: measured shared fraction %.3f, paper %.3f", b.Name, got, want)
		}
	}
}

func TestCannealRaceFoundByBothDetectors(t *testing.T) {
	// §5.3: the canneal Mersenne-Twister-style unsynchronized RNG state
	// races, and both FastTrack and Aikido-FastTrack report it.
	b, _ := ByName("canneal")
	prog, err := workload.Build(b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Run(prog, core.DefaultConfig(core.ModeFastTrackFull))
	if err != nil {
		t.Fatal(err)
	}
	aikido, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
	if err != nil {
		t.Fatal(err)
	}
	if len(fasttrack.RacesIn(full.Findings)) == 0 {
		t.Error("full FastTrack found no canneal race")
	}
	if len(fasttrack.RacesIn(aikido.Findings)) == 0 {
		t.Error("Aikido-FastTrack found no canneal race")
	}
}

func TestLockedBenchmarksHaveNoSpuriousRaces(t *testing.T) {
	// All models except canneal (deliberately racy) must be race-free:
	// locks, barriers and read-only sharing are properly synchronized.
	for _, b := range All() {
		if b.Name == "canneal" {
			continue
		}
		b := b.WithScale(0.25)
		prog, err := workload.Build(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(prog, core.DefaultConfig(core.ModeFastTrackFull))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(fasttrack.RacesIn(res.Findings)) != 0 {
			t.Errorf("%s: unexpected races: %v", b.Name, fasttrack.RacesIn(res.Findings)[0])
		}
	}
}

// Package parsec models the ten PARSEC 2.1 benchmarks of the paper's
// evaluation (§5.1) as workload specifications.
//
// The real binaries are unavailable to a pure-Go reproduction, so each
// model is calibrated to the *sharing characteristics* the paper measured
// for the real benchmark (DESIGN.md §2):
//
//   - the ratio of instrumented instruction executions to total
//     memory-referencing executions (Table 2, column 2 / column 1);
//   - the fraction of accesses that target shared pages (Table 2 column 3
//     / column 1 — the bars of Figure 6);
//   - the synchronization style (fine-grained locks, barriers, read-only
//     sharing, and canneal's unsynchronized Mersenne-Twister state, §5.3);
//   - the ALU-to-memory instruction balance, which sets how much a
//     conservative instrument-everything detector slows the program down.
//
// Dynamic instruction counts are scaled down (~10⁴–10⁵×) from the paper's
// simsmall runs so the whole suite executes in seconds; Table 2's
// reproduction reports the scaled counts and the scale-independent ratios.
package parsec

import (
	"fmt"

	"repro/internal/workload"
)

// PaperRow carries the paper's published numbers for one benchmark, used
// by the experiment harness to print paper-vs-measured comparisons.
type PaperRow struct {
	// Table 2 columns (dynamic counts on simsmall at 8 threads).
	MemRefs      uint64
	Instrumented uint64
	SharedAccess uint64
	Segfaults    uint64
	// Table 1 slowdowns (only fluidanimate and vips have published
	// numbers; zero elsewhere). Indexed by threads 2, 4, 8.
	FastTrack       map[int]float64
	AikidoFastTrack map[int]float64
}

// InstrumentedFrac returns Table 2's column2/column1 ratio.
func (p PaperRow) InstrumentedFrac() float64 {
	return float64(p.Instrumented) / float64(p.MemRefs)
}

// SharedFrac returns Table 2's column3/column1 ratio (Figure 6).
func (p PaperRow) SharedFrac() float64 {
	return float64(p.SharedAccess) / float64(p.MemRefs)
}

// Benchmark is one modeled PARSEC application.
type Benchmark struct {
	Name  string
	Spec  workload.Spec
	Paper PaperRow
}

// WithThreads returns a copy of the benchmark configured for n worker
// threads (Table 1 sweeps 2/4/8).
func (b Benchmark) WithThreads(n int) Benchmark {
	b.Spec.Threads = n
	return b
}

// WithScale multiplies the iteration count by f (workload size control for
// quick tests vs. full runs).
func (b Benchmark) WithScale(f float64) Benchmark {
	it := int(float64(b.Spec.Iters) * f)
	if it < 1 {
		it = 1
	}
	b.Spec.Iters = it
	return b
}

// Build compiles the benchmark's program.
func (b Benchmark) Build() (*Benchmark, error) {
	if err := b.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("parsec %s: %w", b.Name, err)
	}
	return &b, nil
}

// All returns the ten benchmark models at their default 8-worker,
// simsmall-scaled configuration, in the paper's Figure 5 order.
func All() []Benchmark {
	return []Benchmark{
		{
			Name: "freqmine",
			Spec: workload.Spec{
				Name: "freqmine", Threads: 8, Iters: 570,
				AluOps: 21, PrivateOps: 4, PrivatePages: 2,
				SharedOps: 6, SharedPeriod: 1, Locks: 4, SharedWritePct: 20,
				MixedOps: 1, MixedPeriod: 8,
			},
			Paper: PaperRow{MemRefs: 1_167_712_401, Instrumented: 742_195_956,
				SharedAccess: 651_009_521, Segfaults: 24_880},
		},
		{
			Name: "blackscholes",
			Spec: workload.Spec{
				Name: "blackscholes", Threads: 8, Iters: 450,
				AluOps: 95, PrivateOps: 13, PrivatePages: 4,
				SharedOps: 1, SharedPeriod: 1, Locks: 2,
			},
			Paper: PaperRow{MemRefs: 105_944_404, Instrumented: 7_395_315,
				SharedAccess: 7_340_038, Segfaults: 889},
		},
		{
			Name: "bodytrack",
			Spec: workload.Spec{
				Name: "bodytrack", Threads: 8, Iters: 270,
				AluOps: 78, PrivateOps: 18, PrivatePages: 2,
				SharedOps: 4, SharedPeriod: 1, Locks: 4,
				MixedOps: 1, MixedPeriod: 2,
				BarrierPeriod: 40,
			},
			Paper: PaperRow{MemRefs: 384_925_938, Instrumented: 83_514_877,
				SharedAccess: 77_116_382, Segfaults: 8_993},
		},
		{
			Name: "raytrace",
			Spec: workload.Spec{
				Name: "raytrace", Threads: 8, Iters: 2080,
				AluOps: 89, PrivateOps: 3, PrivatePages: 4,
				SharedOps: 1, SharedPeriod: 256, Locks: 1,
			},
			Paper: PaperRow{MemRefs: 13_186_394_771, Instrumented: 16_920_360,
				SharedAccess: 14_419_167, Segfaults: 23_350},
		},
		{
			Name: "swaptions",
			Spec: workload.Spec{
				Name: "swaptions", Threads: 8, Iters: 520,
				AluOps: 90, PrivateOps: 10, PrivatePages: 2,
				SharedOps: 1, SharedPeriod: 1, Locks: 2,
				MixedOps: 1, MixedPeriod: 3,
			},
			Paper: PaperRow{MemRefs: 350_009_582, Instrumented: 58_348_333,
				SharedAccess: 41_602_078, Segfaults: 1_778},
		},
		{
			Name: "fluidanimate",
			Spec: workload.Spec{
				Name: "fluidanimate", Threads: 8, Iters: 570,
				AluOps: 0, PrivateOps: 4, PrivatePages: 2,
				SharedOps: 5, SharedPeriod: 1, Locks: 4, SharedWritePct: 65,
				MixedOps: 2, MixedPeriod: 8,
				BarrierPeriod: 25,
			},
			Paper: PaperRow{MemRefs: 556_317_760, Instrumented: 356_317_897,
				SharedAccess: 267_758_255, Segfaults: 11_054,
				FastTrack:       map[int]float64{2: 55.79, 4: 127.62, 8: 178.60},
				AikidoFastTrack: map[int]float64{2: 48.11, 4: 110.65, 8: 184.33}},
		},
		{
			Name: "vips",
			Spec: workload.Spec{
				Name: "vips", Threads: 8, Iters: 310,
				AluOps: 78, PrivateOps: 15, PrivatePages: 4,
				SharedOps: 2, SharedPeriod: 1, Locks: 4,
				MixedOps: 1, MixedPeriod: 2,
				ROSharedOps: 2,
			},
			Paper: PaperRow{MemRefs: 1_044_161_383, Instrumented: 253_794_130,
				SharedAccess: 231_533_572, Segfaults: 10_227,
				FastTrack:       map[int]float64{2: 45.52, 4: 53.34, 8: 67.24},
				AikidoFastTrack: map[int]float64{2: 31.5, 4: 35.96, 8: 66.37}},
		},
		{
			Name: "x264",
			Spec: workload.Spec{
				Name: "x264", Threads: 8, Iters: 520,
				AluOps: 13, PrivateOps: 8, PrivatePages: 2,
				SharedOps: 3, SharedPeriod: 1, Locks: 4,
				MixedOps: 1, MixedPeriod: 2,
				BarrierPeriod: 30,
			},
			Paper: PaperRow{MemRefs: 241_456_020, Instrumented: 82_561_137,
				SharedAccess: 70_813_420, Segfaults: 32_616},
		},
		{
			Name: "canneal",
			Spec: workload.Spec{
				Name: "canneal", Threads: 8, Iters: 390,
				AluOps: 65, PrivateOps: 14, PrivatePages: 4,
				SharedOps: 1, SharedPeriod: 1, Locks: 4,
				ROSharedOps: 1,
				// The unsynchronized Mersenne-Twister RNG state (§5.3).
				RacyOps: 1, RacyPeriod: 16,
			},
			Paper: PaperRow{MemRefs: 560_635_087, Instrumented: 69_108_663,
				SharedAccess: 68_153_896, Segfaults: 23_049},
		},
		{
			Name: "streamcluster",
			Spec: workload.Spec{
				Name: "streamcluster", Threads: 8, Iters: 390,
				AluOps: 28, PrivateOps: 10, PrivatePages: 2,
				SharedOps: 3, SharedPeriod: 1, Locks: 4,
				ROSharedOps:   3,
				BarrierPeriod: 20,
			},
			Paper: PaperRow{MemRefs: 1_067_233_548, Instrumented: 403_953_097,
				SharedAccess: 396_265_668, Segfaults: 5_918},
		},
	}
}

// ByName returns the named benchmark model.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("parsec: unknown benchmark %q", name)
}

// Names lists the benchmark names in Figure 5 order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

package sharing_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/sharing"
	"repro/internal/vm"
)

// build assembles a two-page program where main touches page A, the worker
// touches page B, and (optionally) both touch page C.
func build(t *testing.T, both bool) (*isa.Program, uint64, uint64, uint64) {
	t.Helper()
	b := isa.NewBuilder("sdtest")
	pa := b.Global(vm.PageSize, vm.PageSize)
	pb := b.Global(vm.PageSize, vm.PageSize)
	pc := b.Global(vm.PageSize, vm.PageSize)

	b.MovImm(isa.R5, 0)
	b.ThreadCreate("worker", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.MovImm(isa.R1, 1)
	b.StoreAbs(pa, isa.R1)
	if both {
		b.StoreAbs(pc, isa.R1)
	}
	b.ThreadJoin(isa.R9)
	b.Halt()

	b.Label("worker")
	b.MovImm(isa.R1, 2)
	b.StoreAbs(pb, isa.R1)
	if both {
		b.LoopN(isa.R2, 3, func(b *isa.Builder) {
			b.LoadAbs(isa.R3, pc)
		})
	}
	b.Halt()
	return b.MustFinish(), pa, pb, pc
}

func runSD(t *testing.T, prog *isa.Program) *core.System {
	t.Helper()
	s, err := core.NewSystem(prog, core.DefaultConfig(core.ModeAikidoProfile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFigure3StateMachine(t *testing.T) {
	prog, pa, pb, pc := build(t, true)
	s := runSD(t, prog)

	st, owner := s.SD.PageStateOf(pa)
	if st != sharing.Private || owner != 1 {
		t.Errorf("page A: %v/%d, want private/1", st, owner)
	}
	st, owner = s.SD.PageStateOf(pb)
	if st != sharing.Private || owner != 2 {
		t.Errorf("page B: %v/%d, want private/2", st, owner)
	}
	st, _ = s.SD.PageStateOf(pc)
	if st != sharing.Shared {
		t.Errorf("page C: %v, want shared", st)
	}
}

func TestUntouchedPagesStayUnused(t *testing.T) {
	prog, _, _, pc := build(t, false)
	s := runSD(t, prog)
	st, _ := s.SD.PageStateOf(pc)
	if st != sharing.Unused {
		t.Errorf("untouched page: %v, want unused", st)
	}
}

func TestOnePageFaultPerPrivatePage(t *testing.T) {
	// "the Aikido sharing detector requires just one page fault per
	// thread for each page that will remain private" (§3.3.2): repeated
	// accesses to a private page add no further faults.
	b := isa.NewBuilder("onefault")
	pa := b.Global(vm.PageSize, vm.PageSize)
	b.MovImm(isa.R1, int64(pa))
	b.LoopN(isa.R2, 50, func(b *isa.Builder) {
		b.Store(isa.R1, 0, isa.R2)
		b.Load(isa.R3, isa.R1, 0)
	})
	b.Halt()
	s := runSD(t, b.MustFinish())
	// Exactly one data fault for page A (stack untouched, code pages are
	// DynamoRIO touches, not app faults).
	if got := s.SD.C.FaultsHandled; got != 1 {
		t.Errorf("FaultsHandled = %d, want 1", got)
	}
	if s.SD.C.SpuriousFaults != 0 {
		t.Errorf("SpuriousFaults = %d", s.SD.C.SpuriousFaults)
	}
}

func TestSharedPageStaysGloballyProtected(t *testing.T) {
	// After a page becomes shared, every NEW instruction accessing it
	// faults once (then is instrumented); instrumented instructions
	// never fault again.
	b := isa.NewBuilder("stayprot")
	pc := b.Global(vm.PageSize, vm.PageSize)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.MovImm(isa.R1, 1)
	b.StoreAbs(pc, isa.R1) // instr X: first access, page -> private(1)
	b.ThreadJoin(isa.R9)
	// Three distinct instructions post-sharing: each faults exactly once.
	b.LoadAbs(isa.R2, pc)
	b.LoadAbs(isa.R3, pc+8)
	b.StoreAbs(pc+16, isa.R3)
	// And a loop re-executing one instrumented instruction many times.
	b.LoopN(isa.R4, 40, func(b *isa.Builder) {
		b.LoadAbs(isa.R2, pc)
	})
	b.Halt()
	b.Label("w")
	b.MovImm(isa.R1, 2)
	b.StoreAbs(pc, isa.R1) // second thread: page -> shared
	b.Halt()
	prog := b.MustFinish()
	s := runSD(t, prog)

	if st, _ := s.SD.PageStateOf(pc); st != sharing.Shared {
		t.Fatalf("page not shared")
	}
	// Faults: X (unused->private), worker store (private->shared, instr),
	// 3 post-sharing instructions + 1 loop body instruction = 4 more.
	// Instrumented PCs: worker store + 4 = 5.
	if got := s.SD.C.InstrumentedPCs; got != 5 {
		t.Errorf("InstrumentedPCs = %d, want 5", got)
	}
	if got := s.SD.C.FaultsHandled; got != 6 {
		t.Errorf("FaultsHandled = %d, want 6 (1 private + 5 instrumentation)", got)
	}
	// The loop's 40 executions all went through the mirror: 40 + loads +
	// store = 44 shared accesses... plus the worker's instrumented store
	// re-execution (43+1+1? count exactly: 3 singles + 40 loop + 1 worker
	// retry execution).
	if got := s.SD.C.SharedPageAccesses; got != 44 {
		t.Errorf("SharedPageAccesses = %d, want 44", got)
	}
}

func TestMemoryValuesCorrectThroughMirror(t *testing.T) {
	// Values written through mirrors must be the values read back, both
	// by instrumented and newly instrumented instructions.
	b := isa.NewBuilder("mirrorval")
	pg := b.Global(vm.PageSize, vm.PageSize)
	out := b.Global(8, 8)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.Lock(1)
	b.MovImm(isa.R1, 100)
	b.StoreAbs(pg, isa.R1)
	b.Unlock(1)
	b.ThreadJoin(isa.R9)
	b.LoadAbs(isa.R2, pg) // should see worker's 200 (worker ran after join? no: worker may run before)
	b.StoreAbs(out, isa.R2)
	b.Halt()
	b.Label("w")
	b.Lock(1)
	b.MovImm(isa.R1, 200)
	b.StoreAbs(pg, isa.R1)
	b.Unlock(1)
	b.Halt()
	prog := b.MustFinish()

	native, err := core.Run(prog, core.DefaultConfig(core.ModeNative))
	if err != nil {
		t.Fatal(err)
	}
	aikido, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: both modes schedule identically, so the final value
	// must agree between native and Aikido execution.
	_ = native
	_ = aikido
	sys, err := core.NewSystem(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	nat, err := core.NewSystem(prog, core.DefaultConfig(core.ModeNative))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nat.Run(); err != nil {
		t.Fatal(err)
	}
	vA, fA := sys.HV.Load(1, out, 8, false)
	if fA != nil {
		t.Fatal(fA)
	}
	vN, fN := nat.Engine.Mem.Load(1, out, 8, true)
	if fN != nil {
		t.Fatal(fN)
	}
	if vA != vN {
		t.Errorf("aikido result %d != native %d", vA, vN)
	}
}

func TestDRCodeTouches(t *testing.T) {
	prog, _, _, _ := build(t, true)
	s := runSD(t, prog)
	if s.SD.C.DRUnprotects == 0 {
		t.Error("block building never hit protected code pages")
	}
	// Code pages never become app-shared from DynamoRIO touches alone.
	if st, _ := s.SD.PageStateOf(isa.CodeBase); st != sharing.Unused {
		t.Errorf("code page state changed by DR touches: %v", st)
	}
}

func TestInstrumentOnlyAfterSharing(t *testing.T) {
	prog, _, _, _ := build(t, false) // no page shared
	s := runSD(t, prog)
	if s.SD.InstrumentedPCs() != 0 {
		t.Errorf("instrumented %d PCs without sharing", s.SD.InstrumentedPCs())
	}
	if s.SD.C.SharedPageAccesses != 0 {
		t.Error("shared accesses without sharing")
	}
}

func TestIndirectPrivateCheckPath(t *testing.T) {
	// An indirect instruction that touches BOTH a shared page and a
	// private page: once instrumented, its private-page executions take
	// the check-and-skip path (PrivateChecked) and stay un-analyzed.
	b := isa.NewBuilder("indirect")
	shared := b.Global(vm.PageSize, vm.PageSize)
	priv := b.Global(vm.PageSize, vm.PageSize)

	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	// Main loop alternates the SAME indirect store between shared and
	// private pages.
	b.MovImm(isa.R6, int64(shared))
	b.MovImm(isa.R7, int64(priv))
	b.LoopN(isa.R2, 20, func(b *isa.Builder) {
		b.Store(isa.R6, 0, isa.R2) // indirect via R6
		b.Store(isa.R7, 0, isa.R2) // indirect via R7 — stays private... but
		// use ONE instruction for both pages: swap R6/R7 each iter.
		b.Mov(isa.R3, isa.R6)
		b.Mov(isa.R6, isa.R7)
		b.Mov(isa.R7, isa.R3)
	})
	b.ThreadJoin(isa.R9)
	b.Halt()
	b.Label("w")
	b.MovImm(isa.R1, 9)
	b.StoreAbs(shared, isa.R1) // makes `shared` page shared once main touched it
	b.Halt()
	prog := b.MustFinish()

	cfg := core.DefaultConfig(core.ModeAikidoFastTrack)
	cfg.Engine.Quantum = 40 // interleave within the loop
	s, err := core.NewSystem(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SD.C.PrivateChecked == 0 {
		t.Error("indirect shared/private check never took the private path")
	}
	if s.SD.C.SharedPageAccesses == 0 {
		t.Error("indirect instruction never analyzed on shared page")
	}
}

func TestNewMmapIsProtectedImmediately(t *testing.T) {
	// Memory mapped at runtime must be protected like startup memory:
	// first toucher owns it, second toucher shares it.
	b := isa.NewBuilder("mmapprot")
	ptr := b.Global(8, 8)
	b.MovImm(isa.R0, vm.PageSize)
	b.MovImm(isa.R1, 0)
	b.Syscall(isa.SysMmap)
	b.StoreAbs(ptr, isa.R0) // publish buffer address (data page gets shared)
	b.Mov(isa.R8, isa.R0)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.MovImm(isa.R1, 5)
	b.Store(isa.R8, 0, isa.R1) // main touches the new page
	b.ThreadJoin(isa.R9)
	b.Halt()
	b.Label("w")
	b.LoadAbs(isa.R8, ptr)
	b.MovImm(isa.R1, 6)
	b.Store(isa.R8, 8, isa.R1) // worker touches it too -> shared
	b.Halt()
	prog := b.MustFinish()

	s, err := core.NewSystem(prog, core.DefaultConfig(core.ModeAikidoProfile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Find the mmap VMA and check it ended up shared.
	var mmapBase uint64
	for _, v := range s.Process.VMAs() {
		if v.Kind == guest.VMAMmap && v.Base >= isa.MmapBase {
			mmapBase = v.Base
		}
	}
	if mmapBase == 0 {
		t.Fatal("no mmap VMA")
	}
	st, _ := s.SD.PageStateOf(mmapBase)
	if st != sharing.Shared {
		t.Errorf("runtime-mapped page state = %v, want shared", st)
	}
}

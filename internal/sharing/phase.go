package sharing

// Doppel-style split phases for hot pages. Epoch re-privatization
// (epoch.go) rescues pages that go effectively private, but a page
// written by MANY threads every epoch — false sharing, a contended
// counter, the hot rank of a Zipf-skewed region — is hot forever: it
// never demotes, every access pays the full per-access transition into
// the analysis runtime, and every optimization that reorders WHEN
// analysis work happens leaves it at exactly 1.00×.
//
// Doppel (Narula et al., OSDI 2014) solves the same shape for contended
// database keys: a coordinator flips contended keys into a *split
// phase*, during which cores accumulate operations in per-core local
// stores instead of fighting over the canonical record, and a
// *reconciliation* merge folds the local deltas back into canonical
// state at the phase boundary — correct because the split operations
// commute and the boundary is a barrier. This file is the classifier
// and phase state for the Aikido analogue:
//
//   - The owner-dominance counters the epoch sweep already keeps are
//     extended with per-epoch WRITER accounting (first writer vs writes
//     by everyone else), so the sweep can classify a Shared page as
//     *hot*: many-writer, every epoch, above the policy's volume floor.
//   - A hot streak of SplitAfter epochs flips the page into the split
//     phase (pageInfo.split); a calm streak of JoinAfter epochs flips it
//     back to joined. Flips happen ONLY inside EpochSweep — never on the
//     access path — and internal/core reconciles banked deltas BEFORE
//     every sweep, so a page's banked records are always delivered under
//     the phase the page had when they were banked.
//   - While split, the detector routes the page's accesses to the
//     PhaseBanker (core's phased dispatch pipeline) instead of the
//     inline analysis surface; the banker stores them in private
//     per-thread delta rings and replays them, k-way-merged into
//     canonical global order, at the next reconcile point.
//
// The soundness argument mirrors the grace-epoch rule: a banked access
// is never dropped, only delayed, and every delay ends strictly before
// the next phase flip, sync event, VMA change or demotion — the
// boundary access is always analyzed. See docs/phases.md.

import (
	"repro/internal/guest"
	"repro/internal/isa"
)

// PhasePolicy parameterizes split-phase classification of hot Shared
// pages. The zero value disables the mechanism entirely.
type PhasePolicy struct {
	// SplitAfter is the number of consecutive hot epochs before a Shared
	// page flips into the split phase. 0 disables splitting.
	SplitAfter uint8
	// JoinAfter is the number of consecutive calm (not-hot) epochs
	// before a split page rejoins. 0 is treated as 1.
	JoinAfter uint8
	// MinHotHits is the minimum number of instrumented accesses a page
	// must take in an epoch for that epoch to count as hot — the volume
	// floor that keeps lightly-shared pages (every PARSEC model) out of
	// the split phase. 0 is treated as 1.
	MinHotHits uint32
	// MinOtherWrites is the minimum number of writes by threads OTHER
	// than the epoch's first writer — the many-writer test. A page one
	// thread writes and others only read is a demotion candidate, not a
	// split candidate. 0 is treated as 1.
	MinOtherWrites uint32
}

// Enabled reports whether the policy splits at all.
func (p PhasePolicy) Enabled() bool { return p.SplitAfter > 0 }

// DefaultPhasePolicy is the calibrated default. The discriminator is
// PERSISTENCE, not volume: a genuinely hot page (false sharing, a
// contended counter, a Zipf head rank) is many-writer in EVERY epoch
// from first touch to exit, while burstier sharing goes calm before a
// long streak completes — so the policy demands a four-epoch unbroken
// hot streak before splitting, with volume floors low enough that a
// modestly hot page still qualifies each epoch. A PARSEC model page
// that sustains the streak splits legitimately: findings stay
// byte-identical by construction (reconcile-before-boundary), the
// banked work simply gets cheaper under the transition-cost model, and
// under the default (all-zero) cost model the whole mechanism is
// charge-free — CI pins phased reports byte-identical to inline there.
func DefaultPhasePolicy() PhasePolicy {
	return PhasePolicy{
		SplitAfter:     4,
		JoinAfter:      2,
		MinHotHits:     48,
		MinOtherWrites: 16,
	}
}

// PhaseBanker is the split-phase delivery surface the detector routes a
// split page's accesses to — implemented by internal/core's phased
// dispatch pipeline, which banks each access as a compact record in the
// acting thread's private delta ring. The banker owns the reconcile
// schedule; the detector only guarantees it never flips a page's phase
// between a bank and the next reconcile (flips happen only in
// EpochSweep, and core reconciles first).
type PhaseBanker interface {
	OnSplitAccess(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool)
}

// EnablePhases arms split-phase classification: policy thresholds
// normalized, the banker wired. Requires an enabled epoch policy
// (EnableEpochs first) — the classifier lives in the epoch sweep — and
// a non-nil banker; otherwise phases stay off and the detector behaves
// exactly as before.
func (d *Detector) EnablePhases(p PhasePolicy, b PhaseBanker) {
	if p.JoinAfter == 0 {
		p.JoinAfter = 1
	}
	if p.MinHotHits == 0 {
		p.MinHotHits = 1
	}
	if p.MinOtherWrites == 0 {
		p.MinOtherWrites = 1
	}
	d.phase = p
	d.banker = b
	d.phaseOn = d.epochOn && p.Enabled() && b != nil
}

// SplitPages reports how many pages are currently in the split phase.
func (d *Detector) SplitPages() int { return d.nsplit }

// classifyPhase folds one closed epoch's writer accounting into the
// page's hot/calm streaks and flips its phase when a streak crosses the
// policy threshold. Called from EpochSweep only — after the banked
// deltas of the closing epoch have been reconciled (core drains before
// sweeping), so a flip can never strand or reorder a banked record.
func (d *Detector) classifyPhase(pi *pageInfo) {
	hot := pi.epochWTID != guest.NoTID &&
		pi.epochWOther >= d.phase.MinOtherWrites &&
		pi.epochHits+pi.epochOther >= d.phase.MinHotHits
	if hot {
		if pi.hotEpochs < 255 {
			pi.hotEpochs++
		}
		pi.calmEpochs = 0
		if !pi.split && pi.hotEpochs >= d.phase.SplitAfter {
			pi.split = true
			d.nsplit++
			d.C.PagesSplit++
		}
		return
	}
	if pi.calmEpochs < 255 {
		pi.calmEpochs++
	}
	pi.hotEpochs = 0
	if pi.split && pi.calmEpochs >= d.phase.JoinAfter {
		d.clearSplit(pi)
	}
}

// clearSplit rejoins a split page (calm streak, demotion, or re-share).
func (d *Detector) clearSplit(pi *pageInfo) {
	pi.split = false
	pi.hotEpochs, pi.calmEpochs = 0, 0
	d.nsplit--
	d.C.PagesJoined++
}

package sharing_test

// Property test of the full Aikido stack: generate random per-thread page
// access patterns, compile them to a guest program, run them through the
// real machinery (hypervisor faults, AikidoSD transitions), and check the
// final page states against ground truth computed directly from the
// pattern:
//
//   - pages touched by exactly one thread end Private(that thread);
//   - pages touched by two or more threads end Shared;
//   - untouched pages end Unused;
//   - no spurious faults ever occur.

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sharing"
	"repro/internal/vm"
)

// pattern describes which of 6 pages each of up to 3 workers touches.
type pattern struct {
	// Touch[w] is a bitmask of pages worker w accesses (in order).
	Touch [3]uint8
	// Writes selects store vs load per worker.
	Writes [3]bool
}

const propPages = 6

// buildPattern compiles the pattern: main creates the workers serially and
// joins them; worker w touches its pages twice each (second touch must not
// fault when private).
func buildPattern(p pattern) *isa.Program {
	b := isa.NewBuilder("pattern")
	pages := b.Global(propPages*vm.PageSize, vm.PageSize)

	b.MovImm(isa.R5, 0)
	for w := 0; w < 3; w++ {
		b.MovImm(isa.R5, int64(w))
		b.ThreadCreate("worker", isa.R5)
		b.Mov(isa.R9, isa.R0)
		b.ThreadJoin(isa.R9) // serialize: deterministic sharing order
	}
	b.Halt()

	b.Label("worker")
	// Dispatch on worker index (R0) to that worker's touch sequence.
	for w := 0; w < 3; w++ {
		b.BrImm(isa.NE, isa.R0, int64(w), skipLabel(w))
		for pg := 0; pg < propPages; pg++ {
			if p.Touch[w]&(1<<pg) == 0 {
				continue
			}
			addr := pages + uint64(pg*vm.PageSize) + uint64(8*w)
			for rep := 0; rep < 2; rep++ {
				if p.Writes[w] {
					b.MovImm(isa.R1, int64(w+1))
					b.StoreAbs(addr, isa.R1)
				} else {
					b.LoadAbs(isa.R1, addr)
				}
			}
		}
		b.Halt()
		b.Label(skipLabel(w))
	}
	b.Halt()
	return b.MustFinish()
}

func skipLabel(w int) string {
	return "skip" + string(rune('0'+w))
}

func TestSharingStateMachineProperty(t *testing.T) {
	prop := func(p pattern) bool {
		prog := buildPattern(p)
		s, err := core.NewSystem(prog, core.DefaultConfig(core.ModeAikidoProfile))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if _, err := s.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if s.SD.C.SpuriousFaults != 0 {
			t.Logf("spurious faults: %d", s.SD.C.SpuriousFaults)
			return false
		}
		pagesBase := isa.DataBase
		for pg := 0; pg < propPages; pg++ {
			var touchers []int
			for w := 0; w < 3; w++ {
				if p.Touch[w]&(1<<pg) != 0 {
					touchers = append(touchers, w)
				}
			}
			st, owner := s.SD.PageStateOf(pagesBase + uint64(pg*vm.PageSize))
			switch len(touchers) {
			case 0:
				if st != sharing.Unused {
					t.Logf("page %d: %v, want unused", pg, st)
					return false
				}
			case 1:
				// Worker w is TID w+2 (main is 1, workers created in order).
				wantOwner := touchers[0] + 2
				if st != sharing.Private || int(owner) != wantOwner {
					t.Logf("page %d: %v/%d, want private/%d", pg, st, owner, wantOwner)
					return false
				}
			default:
				if st != sharing.Shared {
					t.Logf("page %d: %v, want shared (touchers %v)", pg, st, touchers)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSharingDeterministicAcrossRuns(t *testing.T) {
	// The same pattern always produces identical fault counts and states.
	p := pattern{Touch: [3]uint8{0b101011, 0b001110, 0b100001}, Writes: [3]bool{true, false, true}}
	prog := buildPattern(p)
	var base *core.Result
	for i := 0; i < 3; i++ {
		res, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoProfile))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
		} else if res.HV.AikidoFaults != base.HV.AikidoFaults ||
			res.SD.PagesShared != base.SD.PagesShared ||
			res.Cycles != base.Cycles {
			t.Fatalf("run %d diverged: %+v vs %+v", i, res.SD, base.SD)
		}
	}
}

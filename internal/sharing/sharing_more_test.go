package sharing_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/sharing"
	"repro/internal/vm"
)

func TestPageStateStrings(t *testing.T) {
	for _, s := range []sharing.PageState{sharing.Unused, sharing.Private, sharing.Shared} {
		if s.String() == "state?" {
			t.Errorf("state %d unnamed", s)
		}
	}
	if sharing.PageState(9).String() != "state?" {
		t.Error("invalid state not flagged")
	}
}

func TestPageStateOfUnmappedAddress(t *testing.T) {
	prog, _, _, _ := build(t, false)
	s := runSD(t, prog)
	st, owner := s.SD.PageStateOf(0xdead_0000_0000)
	if st != sharing.Unused || owner != 0 {
		t.Errorf("unmapped address state = %v/%d", st, owner)
	}
}

func TestMunmapClearsProtectionState(t *testing.T) {
	// A page that was protected, went private, and is then unmapped must
	// not leave dangling Aikido protections: remapping the same address
	// range later starts fresh.
	b := isa.NewBuilder("munmapclear")
	ptr := b.GlobalU64(0)
	b.MovImm(isa.R0, vm.PageSize)
	b.MovImm(isa.R1, 0)
	b.Syscall(isa.SysMmap)
	b.StoreAbs(ptr, isa.R0)
	b.Mov(isa.R8, isa.R0)
	b.MovImm(isa.R1, 5)
	b.Store(isa.R8, 0, isa.R1) // touch: Unused -> Private(main)
	b.Mov(isa.R0, isa.R8)
	b.Syscall(isa.SysMunmap)
	b.Halt()
	prog := b.MustFinish()

	s, err := core.NewSystem(prog, core.DefaultConfig(core.ModeAikidoProfile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// After munmap the page is gone from every tracking structure; the
	// run completing without spurious faults is the main assertion.
	if s.SD.C.SpuriousFaults != 0 {
		t.Errorf("spurious faults: %d", s.SD.C.SpuriousFaults)
	}
}

func TestSharedCountersConsistent(t *testing.T) {
	prog, _, _, _ := build(t, true)
	s := runSD(t, prog)
	if s.SD.SharedPages() != s.SD.C.PagesShared {
		t.Error("SharedPages accessor disagrees with counters")
	}
	if s.SD.InstrumentedPCs() != int(s.SD.C.InstrumentedPCs) {
		t.Error("InstrumentedPCs accessor disagrees with counters")
	}
}

func TestNoMirrorAblationReprotects(t *testing.T) {
	// In the no-mirror ablation, a shared page must be re-protected after
	// every instrumented access — later threads still fault on it.
	b := isa.NewBuilder("nomirror")
	pg := b.Global(vm.PageSize, vm.PageSize)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.MovImm(isa.R1, 1)
	b.StoreAbs(pg, isa.R1)
	b.ThreadJoin(isa.R9)
	// Several more accesses once shared.
	b.LoopN(isa.R2, 10, func(b *isa.Builder) {
		b.LoadAbs(isa.R3, pg)
	})
	b.Halt()
	b.Label("w")
	b.MovImm(isa.R1, 2)
	b.StoreAbs(pg, isa.R1)
	b.Halt()
	prog := b.MustFinish()

	cfg := core.DefaultConfig(core.ModeAikidoFastTrack)
	cfg.NoMirror = true
	s, err := core.NewSystem(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.SD.PageStateOf(pg); st != sharing.Shared {
		t.Fatal("page not shared")
	}
	// The page must still be protected at the end (reprotected after the
	// last access): a fresh translate for a third thread faults.
	if _, fault := s.HV.Load(99, pg, 8, true); fault == nil || !fault.Aikido {
		t.Error("no-mirror ablation left the shared page unprotected")
	}
	if res.SD.SharedPageAccesses == 0 {
		t.Error("no shared accesses analyzed")
	}
}

func TestCodePagesProtectedButExecutable(t *testing.T) {
	// Execution streams from the code cache, so protected code pages
	// never block execution — but a data LOAD from a code page goes
	// through the sharing machinery like any other access.
	b := isa.NewBuilder("codeload")
	out := b.GlobalU64(0)
	b.LoadAbs(isa.R1, isa.CodeBase) // read own code as data
	b.StoreAbs(out, isa.R1)
	b.Halt()
	prog := b.MustFinish()
	s, err := core.NewSystem(prog, core.DefaultConfig(core.ModeAikidoProfile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st, owner := s.SD.PageStateOf(isa.CodeBase)
	if st != sharing.Private || owner != 1 {
		t.Errorf("code page after data read: %v/%d, want private/1", st, owner)
	}
}

func TestRuntimePagesNeverProtected(t *testing.T) {
	// The AikidoLib fault-delivery pages are runtime memory: mapped with
	// their special guest protections and never Aikido-protected or
	// mirrored.
	prog, _, _, _ := build(t, false)
	s := runSD(t, prog)
	for _, v := range s.Process.VMAs() {
		if v.Kind != 0 && v.Name == "aikido-slot" {
			if _, fault := s.HV.Load(1, v.Base, 8, true); fault != nil {
				t.Errorf("runtime slot page faults: %v", fault)
			}
		}
		if v.Name == "aikido-fault-r" {
			if v.Prot != pagetable.ProtNone {
				t.Errorf("read-fault page prot = %v", v.Prot)
			}
		}
	}
}

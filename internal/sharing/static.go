package sharing

import (
	"fmt"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/staticanalysis"
	"repro/internal/vm"
)

// This file is the detector side of the static privacy pre-pass
// (internal/staticanalysis): applying a summary prunes instrumentation of
// ProvenPrivate PCs and pre-seeds statically single-owner pages as
// Private(owner), so neither ever pays the dynamic classification toll.
// Both consumers keep the page protections installed — the protections
// are the safety net that makes a wrong proof loud (a tripwire) instead
// of a lost finding.

// mainTID is the guest main thread (always the first TID allocated).
const mainTID = guest.TID(1)

// StaticTripwireError reports a statically-pruned access observing a
// page it was proven unable to reach — a refuted privacy proof. Raised
// as a panic value in verify mode (the run hard-fails); in normal mode
// the detector counts, un-prunes and self-heals instead.
type StaticTripwireError struct {
	PC   isa.PC
	Addr uint64
	TID  guest.TID
}

func (e *StaticTripwireError) Error() string {
	return fmt.Sprintf("sharing: static tripwire: pruned pc %d reached shared page %#x as thread %d",
		e.PC, e.Addr, e.TID)
}

// ApplyStaticSummary installs a static privacy summary: prunes
// instrumentation of ProvenPrivate PCs and pre-seeds single-owner pages.
// Must be called after Attach and before the engine runs. A degraded
// summary applies as a no-op (its Class array proves nothing).
func (d *Detector) ApplyStaticSummary(sum *staticanalysis.Summary, verify bool) {
	if sum == nil {
		return
	}
	d.static = sum
	d.staticVerify = verify

	d.pruned = make([]uint64, (len(sum.Class)+63)/64)
	for pc, c := range sum.Class {
		if c == staticanalysis.ProvenPrivate {
			d.pruned[pc>>6] |= 1 << (uint(pc) & 63)
		}
	}
	d.C.PCsStaticallyPruned = uint64(sum.PrunedPCs)

	// Pre-seed the main thread's single-accessor data pages.
	for _, vpn := range sum.MainPages {
		d.preSeedPage(mainTID, vpn)
	}
	// Stacks that already exist fired VMAAdded before the summary was
	// applied (the main stack is created at process load); later stacks
	// pre-seed from VMAAdded as they appear.
	for _, v := range d.p.VMAs() {
		if v.Kind == guest.VMAStack && v.Owner != guest.NoTID {
			d.preSeedStack(v)
		}
	}
}

// preSeedStack installs Private(owner) on the statically-touched pages of
// one thread's stack VMA. The offsets are empty unless the pass proved
// the whole program stack-clean, so a dirty program pre-seeds nothing.
func (d *Detector) preSeedStack(v *guest.VMA) {
	if d.static == nil {
		return
	}
	offs := d.static.StackOffsetsSpawn
	if v.Owner == mainTID {
		offs = d.static.StackOffsetsMain
	}
	base := vm.PageNum(v.Base)
	for _, off := range offs {
		if off < 0 || off >= v.Pages {
			continue
		}
		d.preSeedPage(v.Owner, base+uint64(off))
	}
}

// preSeedPage performs one Unused→Private(owner) transition without a
// fault: the page-state write plus the one hypercall that grants the
// owner access (everyone else stays protected — the safety net).
func (d *Detector) preSeedPage(owner guest.TID, vpn uint64) {
	pi := d.pages.Get(owner, vpn<<vm.PageShift)
	if pi == nil || pi.State != Unused {
		return
	}
	pi.State = Private
	pi.Owner = owner
	pi.preSeeded = true
	d.C.PagesPrivate++
	d.C.PagesPreSeeded++
	d.prov.UnprotectForThread(owner, vpn)
}

// isPruned tests the static ProvenPrivate bitmap.
func (d *Detector) isPruned(pc isa.PC) bool {
	w := int(pc >> 6)
	return w < len(d.pruned) && d.pruned[w]&(1<<(uint(pc)&63)) != 0
}

// unprune clears one PC's pruned bit (tripwire self-heal).
func (d *Detector) unprune(pc isa.PC) {
	if w := int(pc >> 6); w < len(d.pruned) {
		d.pruned[w] &^= 1 << (uint(pc) & 63)
	}
}

// tripwire fires when a pruned PC participates in a sharing transition —
// something the privacy proof said was impossible. Verify mode hard-fails
// the run; the normal path counts the refutation, un-prunes the PC and
// lets the caller instrument it (self-heal: the page protections already
// guaranteed no finding was lost, the PC merely rejoins the dynamic
// path).
func (d *Detector) tripwire(tid guest.TID, pc isa.PC, addr uint64) {
	if !d.isPruned(pc) {
		return
	}
	if d.staticVerify {
		panic(&StaticTripwireError{PC: pc, Addr: addr, TID: tid})
	}
	d.C.StaticTripwires++
	d.unprune(pc)
}

// tripwirePlan is the verify-mode instrumentation of a pruned PC: no
// charges, no analysis — only the assertion that the access never
// observes a Shared page. (Outside verify mode pruned PCs get no plan at
// all; cycle costs are part of the benchmark contract, assertions are
// not.)
func (d *Detector) tripwirePlan() *dbi.Plan {
	return &dbi.Plan{PreAccess: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) uint64 {
		pi := d.pages.Get(tid, addr)
		if pi != nil && pi.State == Shared {
			panic(&StaticTripwireError{PC: pc, Addr: addr, TID: tid})
		}
		return addr
	}}
}

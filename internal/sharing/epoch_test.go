package sharing_test

// Tests of epoch-based re-privatization (epoch.go), at the level the
// mechanism must be judged: the full Aikido stack. The soundness claim is
// that demotion only re-arms protections, so the first post-demotion
// cross-thread access always faults and re-drives the Figure 3
// transitions — no cross-thread access can ever be missed. The property
// test below checks the observable form of that claim: under random,
// maximally aggressive demotion schedules, the set of racy addresses
// FastTrack reports is identical to the terminal-Shared baseline's, and
// no spurious faults ever occur.

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fasttrack"
	"repro/internal/isa"
	"repro/internal/sharing"
	"repro/internal/vm"
)

// racePattern describes up to 3 concurrently-running workers hammering 4
// pages: Touch[w] selects the pages worker w writes each iteration, and
// Slot[w] selects which of two 8-byte slots per page it writes. Two
// workers conflict — and, with no synchronization between workers, race —
// exactly when they share a (page, slot) pair.
type racePattern struct {
	Touch [3]uint8
	Slot  [3]uint8 // bit p = worker's slot index on page p
	// IntervalSel randomizes the demotion schedule (epoch length).
	IntervalSel uint8
}

const racePages = 4

// buildRacePattern compiles the pattern: main spawns the three workers
// (creation serialized by lock 0, as the guest ABI requires) and joins
// them only after all are running, so the workers genuinely interleave.
func buildRacePattern(p racePattern) *isa.Program {
	b := isa.NewBuilder("racepattern")
	pages := b.Global(racePages*vm.PageSize, vm.PageSize)
	tids := b.GlobalArray(3)

	for w := 0; w < 3; w++ {
		b.Lock(0)
		b.MovImm(isa.R5, int64(w))
		b.ThreadCreate("worker", isa.R5)
		b.Unlock(0)
		b.StoreAbs(tids+uint64(w*8), isa.R0)
	}
	for w := 0; w < 3; w++ {
		b.LoadAbs(isa.R9, tids+uint64(w*8))
		b.ThreadJoin(isa.R9)
	}
	b.MovImm(isa.R0, 0)
	b.Syscall(isa.SysExit)

	// Worker bodies: dispatch on the worker index, then loop 24 times
	// over the assigned (page, slot) writes — enough iterations that
	// every conflicting pair overlaps a Shared interval many times even
	// while demotion keeps re-privatizing the pages underneath them.
	b.Label("worker")
	for w := 0; w < 3; w++ {
		skip := fmt.Sprintf(".w%d", w)
		b.BrImm(isa.NE, isa.R0, int64(w), skip)
		b.MovImm(isa.R3, int64(w+1))
		b.LoopN(isa.R2, 24, func(b *isa.Builder) {
			for pg := 0; pg < racePages; pg++ {
				if p.Touch[w]&(1<<pg) == 0 {
					continue
				}
				slot := uint64((p.Slot[w] >> pg) & 1)
				b.StoreAbs(pages+uint64(pg*vm.PageSize)+8*slot, isa.R3)
			}
		})
		b.Halt()
		b.Label(skip)
	}
	b.Halt()
	return b.MustFinish()
}

// raceAddrs reduces a result to the set of racy block addresses.
func raceAddrs(res *core.Result) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, r := range fasttrack.RacesIn(res.Findings) {
		out[r.Addr] = true
	}
	return out
}

// TestEpochDemotionPreservesRaces is the no-missed-access property: for
// random access patterns and random (maximally aggressive) demotion
// schedules, the racy addresses detected with demotion enabled are
// exactly the baseline's. Demotion may delay a detection to the
// re-sharing fault, but it can never lose one — and it must never cause
// a spurious fault.
func TestEpochDemotionPreservesRaces(t *testing.T) {
	demotionsSeen := uint64(0)
	prop := func(p racePattern) bool {
		prog := buildRacePattern(p)
		run := func(epoch bool) *core.Result {
			cfg := core.DefaultConfig(core.ModeAikidoFastTrack)
			if epoch {
				cfg.Epoch = sharing.EpochPolicy{
					// A schedule far more aggressive than any sane
					// deployment: epochs of a few thousand cycles,
					// single-epoch demotion, instant quiet demotion.
					Interval:     2_000 + 1_000*uint64(p.IntervalSel%8),
					DemoteAfter:  1,
					QuietAfter:   1,
					MinOwnerHits: 1,
				}
			}
			res, err := core.Run(prog, cfg)
			if err != nil {
				t.Logf("run(epoch=%v): %v", epoch, err)
				return nil
			}
			return res
		}
		base, ep := run(false), run(true)
		if base == nil || ep == nil {
			return false
		}
		if ep.SD.SpuriousFaults != 0 {
			t.Logf("spurious faults: %d", ep.SD.SpuriousFaults)
			return false
		}
		demotionsSeen += ep.SD.PagesDemotedPrivate + ep.SD.PagesDemotedUnused
		want, got := raceAddrs(base), raceAddrs(ep)
		if len(want) != len(got) {
			t.Logf("race sets diverge: baseline %v, epoch %v (pattern %+v)", want, got, p)
			return false
		}
		for a := range want {
			if !got[a] {
				t.Logf("race on %#x missed under demotion (pattern %+v)", a, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	if demotionsSeen == 0 {
		t.Error("no demotion ever fired: the property was vacuous")
	}
}

// TestEpochHandoffRefaults pins the deterministic handoff behaviour on a
// barrier-phased ping-pong: two workers alternately own one page. With
// an aggressive policy the page demotes to the active owner each phase,
// and the next owner's first access must re-fault it back to Shared —
// counted by PagesReshared, with no spurious faults and no findings
// (the handoffs are barrier-ordered).
func TestEpochHandoffRefaults(t *testing.T) {
	b := isa.NewBuilder("pingpong")
	page := b.Global(vm.PageSize, vm.PageSize)
	tids := b.GlobalArray(2)
	for w := 0; w < 2; w++ {
		b.Lock(0)
		b.MovImm(isa.R5, int64(w))
		b.ThreadCreate("worker", isa.R5)
		b.Unlock(0)
		b.StoreAbs(tids+uint64(w*8), isa.R0)
	}
	for w := 0; w < 2; w++ {
		b.LoadAbs(isa.R9, tids+uint64(w*8))
		b.ThreadJoin(isa.R9)
	}
	b.MovImm(isa.R0, 0)
	b.Syscall(isa.SysExit)

	// Worker w: 6 phases; in phase k only worker k%2 hammers the page
	// (200 writes), then both meet at a barrier.
	b.Label("worker")
	b.Mov(isa.R4, isa.R0)
	b.MovImm(isa.R3, 7)
	for k := 0; k < 6; k++ {
		skip := fmt.Sprintf(".idle%d", k)
		b.BrImm(isa.NE, isa.R4, int64(k%2), skip)
		b.LoopN(isa.R2, 200, func(b *isa.Builder) {
			b.StoreAbs(page+8, isa.R3)
			b.StoreAbs(page+16, isa.R3)
		})
		b.Label(skip)
		b.Barrier(int64(300+k), 2)
	}
	b.Halt()
	prog := b.MustFinish()

	cfg := core.DefaultConfig(core.ModeAikidoFastTrack)
	cfg.Epoch = sharing.EpochPolicy{Interval: 3_000, DemoteAfter: 1, QuietAfter: 2, MinOwnerHits: 1}
	res, err := core.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SD.PagesDemotedPrivate == 0 {
		t.Error("expected owner demotions on the ping-pong page")
	}
	if res.SD.PagesReshared == 0 {
		t.Error("expected the handoff to re-fault demoted pages back to Shared")
	}
	if res.SD.SpuriousFaults != 0 {
		t.Errorf("spurious faults: %d", res.SD.SpuriousFaults)
	}
	if n := len(fasttrack.RacesIn(res.Findings)); n != 0 {
		t.Errorf("barrier-ordered ping-pong reported %d races", n)
	}

	base, err := core.Run(prog, core.DefaultConfig(core.ModeAikidoFastTrack))
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles <= res.Cycles {
		t.Errorf("demotion did not pay off: baseline %d cycles, epoch %d", base.Cycles, res.Cycles)
	}
}

// TestEpochQuietDemotionWithZeroMinOwnerHits pins the MinOwnerHits
// normalization: with MinOwnerHits left 0, a wholly quiet epoch must
// still count as quiet (not as "dominated by NoTID"), so an abandoned
// Shared page falls to Unused — never to Private(NoTID).
func TestEpochQuietDemotionWithZeroMinOwnerHits(t *testing.T) {
	// Page A is shared once and abandoned; page B is hammered by both
	// workers throughout, keeping instrumented executions (and so epoch
	// ticks) flowing while A sits idle.
	b := isa.NewBuilder("quiet")
	pages := b.Global(2*vm.PageSize, vm.PageSize)
	tids := b.GlobalArray(2)
	for w := 0; w < 2; w++ {
		b.Lock(0)
		b.MovImm(isa.R5, int64(w))
		b.ThreadCreate("worker", isa.R5)
		b.Unlock(0)
		b.StoreAbs(tids+uint64(w*8), isa.R0)
	}
	for w := 0; w < 2; w++ {
		b.LoadAbs(isa.R9, tids+uint64(w*8))
		b.ThreadJoin(isa.R9)
	}
	b.MovImm(isa.R0, 0)
	b.Syscall(isa.SysExit)

	b.Label("worker")
	b.MovImm(isa.R3, 1)
	b.Shl(isa.R4, isa.R0, 3)
	b.StoreAbs(pages+8, isa.R3)  // share page A once
	b.StoreAbs(pages+16, isa.R3) // (both workers, different slots)
	b.MovImm(isa.R5, int64(pages+uint64(vm.PageSize)+8))
	b.Add(isa.R4, isa.R4, isa.R5)
	b.LoopN(isa.R2, 600, func(b *isa.Builder) {
		b.Store(isa.R4, 0, isa.R3) // hammer page B forever
	})
	b.Halt()
	prog := b.MustFinish()

	cfg := core.DefaultConfig(core.ModeAikidoProfile)
	cfg.Epoch = sharing.EpochPolicy{Interval: 2_000, DemoteAfter: 4, QuietAfter: 2, MinOwnerHits: 0}
	s, err := core.NewSystem(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SD.C.PagesDemotedUnused == 0 {
		t.Errorf("abandoned page never fell to Unused: %+v", s.SD.C)
	}
	st, owner := s.SD.PageStateOf(isa.DataBase)
	if st == sharing.Private && owner == 0 {
		t.Errorf("page A demoted to Private(NoTID): quiet epochs counted as dominance")
	}
}

// TestEpochSweepStateMachine drives EpochSweep directly through the
// public profile surface: a page shared by two threads, then accessed by
// one, must demote to that owner after the configured dominance streak —
// and an untouched page must fall to Unused via the quiet path.
func TestEpochSweepStateMachine(t *testing.T) {
	// Worker 0 touches pages 0+1, worker 1 touches page 0 once (shares
	// it), then worker 0 keeps hammering page 0 alone.
	b := isa.NewBuilder("sweep")
	pages := b.Global(2*vm.PageSize, vm.PageSize)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w0", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.ThreadJoin(isa.R9)
	b.MovImm(isa.R0, 0)
	b.Syscall(isa.SysExit)

	b.Label("w0")
	b.MovImm(isa.R3, 1)
	b.StoreAbs(pages+8, isa.R3)                   // page 0: private to w0
	b.StoreAbs(pages+uint64(vm.PageSize), isa.R3) // page 1: private to w0
	b.MovImm(isa.R5, 1)
	b.ThreadCreate("w1", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.ThreadJoin(isa.R9) // w1 shares page 0, exits
	b.LoopN(isa.R2, 400, func(b *isa.Builder) {
		b.StoreAbs(pages+8, isa.R3) // w0 alone: dominance
	})
	b.Halt()

	b.Label("w1")
	b.MovImm(isa.R3, 2)
	b.StoreAbs(pages+16, isa.R3) // page 0 turns Shared
	b.Halt()
	prog := b.MustFinish()

	cfg := core.DefaultConfig(core.ModeAikidoProfile)
	cfg.Epoch = sharing.EpochPolicy{Interval: 2_000, DemoteAfter: 2, QuietAfter: 0, MinOwnerHits: 1}
	s, err := core.NewSystem(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SD.C.PagesDemotedPrivate == 0 {
		t.Fatalf("page 0 never demoted: %+v", s.SD.C)
	}
	st, owner := s.SD.PageStateOf(isa.DataBase)
	if st != sharing.Private {
		t.Errorf("page 0 after dominance: %v (owner %d), want private", st, owner)
	}
	if s.SD.EpochPages() != 0 {
		t.Errorf("demoted pages still under epoch accounting: %d", s.SD.EpochPages())
	}
}

package sharing

// Epoch-based re-privatization. The Figure 3 state machine makes Shared
// terminal: once two threads touch a page it is instrumented forever, so
// barrier-phased and migratory programs (data handed off between threads
// per phase) keep paying full instrumentation long after a page is again
// effectively private. This file adds the demotion edges:
//
//	Shared ──owner-dominated for DemoteAfter epochs──▶ Private(owner)
//	Shared ──untouched for QuietAfter epochs─────────▶ Unused
//
// The mechanism is the one the page-protection seam already guarantees:
// demotion re-arms the page's protection through the Provider (one
// hypercall/syscall per page, cf. Oreo's versioned protection domains), so
// the first post-demotion access by any thread other than the new owner
// still faults and re-drives the ordinary Figure 3 transitions. Soundness
// is therefore unchanged — a cross-thread access can never slip through —
// while pages that have gone effectively private return to native-speed
// execution once their instrumented instructions are flushed.
//
// Accounting is packed into the existing page-state shadow table
// (pageInfo): per epoch, each Shared page records its first toucher and
// counts accesses by that thread vs everyone else. The epoch clock itself
// lives in internal/core (core.EpochClock) and calls back into EpochSweep;
// the detector only exposes the tick hook on its instrumented hot path.

import (
	"math/bits"

	"repro/internal/guest"
	"repro/internal/isa"
)

// EpochPolicy parameterizes epoch-based re-privatization of Shared pages.
// The zero value disables the mechanism entirely (terminal Shared, the
// paper's Figure 3 behaviour).
type EpochPolicy struct {
	// Interval is the epoch length in simulated cycles. 0 disables
	// re-privatization.
	Interval uint64
	// DemoteAfter is the number of consecutive epochs a Shared page must
	// be dominated by a single thread (no accesses by anyone else) before
	// it is demoted to Private(owner). 0 disables owner demotion.
	DemoteAfter uint8
	// QuietAfter is the number of consecutive access-free epochs before a
	// Shared page is demoted to Unused. 0 disables quiet demotion.
	QuietAfter uint8
	// MinOwnerHits is the minimum number of accesses the dominating
	// thread must make for an epoch to count toward DemoteAfter; epochs
	// with fewer look quiet-ish and are treated as neutral. Guards
	// against demoting on the trailing edge of a phase where one thread
	// merely ran last. 0 is treated as 1 — a wholly quiet epoch must
	// never count as owner-dominated.
	MinOwnerHits uint32
}

// Enabled reports whether the policy re-privatizes at all.
func (p EpochPolicy) Enabled() bool {
	return p.Interval > 0 && (p.DemoteAfter > 0 || p.QuietAfter > 0)
}

// DefaultEpochPolicy is the calibrated default: epochs long enough that
// the steadily-sharing PARSEC models never demote (their findings and
// cycles stay byte-identical to the terminal-Shared baseline, which CI
// pins), short enough that phased/migratory workloads demote within a
// fraction of one phase.
func DefaultEpochPolicy() EpochPolicy {
	return EpochPolicy{
		// The interval must span several full scheduling rounds: one
		// thread's quantum costs tens of thousands of cycles under
		// instrumentation, and an epoch shorter than a round makes
		// whoever happened to be scheduled look like an owner.
		Interval:     1_000_000,
		DemoteAfter:  2,
		QuietAfter:   6,
		MinOwnerHits: 4,
	}
}

// epochPage is one Shared page under epoch accounting: the sweep walks
// this dense list, never the whole shadow table.
type epochPage struct {
	vpn uint64
	pi  *pageInfo
}

// EnableEpochs switches the detector to the demoting state machine. Must
// be called before the guest runs (the list of Shared pages is maintained
// from the first transition onwards).
func (d *Detector) EnableEpochs(p EpochPolicy) {
	if p.MinOwnerHits == 0 {
		p.MinOwnerHits = 1
	}
	d.epoch = p
	d.epochOn = p.Enabled()
}

// SetEpochTicker wires the epoch clock's tick check into the detector's
// instrumented PreAccess path — and only there: the fault path must
// never tick, because a sweep that demoted the faulting page to the
// faulting thread mid-handling would make the delivered fault look
// spurious. The callback must be allocation-free; internal/core's
// EpochClock.MaybeTick is.
func (d *Detector) SetEpochTicker(tick func()) { d.tick = tick }

// EpochPages returns the number of Shared pages currently under epoch
// accounting (tests).
func (d *Detector) EpochPages() int { return len(d.epochPages) }

// noteShared registers a page that just turned Shared with the epoch
// accountant. Called from HandleFault on the Private→Shared transition.
// The grace flag exempts the page from the next sweep: the faulting
// access that caused this transition has not retired through the
// instrumented path yet, and under a pathologically short quiet policy
// an intervening sweep could otherwise demote the page again before the
// analysis ever sees that access.
func (d *Detector) noteShared(vpn uint64, pi *pageInfo) {
	if !d.epochOn {
		return
	}
	if pi.wasDemoted {
		d.C.PagesReshared++
	}
	pi.epochTID = guest.NoTID
	pi.epochHits, pi.epochOther = 0, 0
	pi.epochWTID = guest.NoTID
	pi.epochWOther = 0
	pi.domTID = guest.NoTID
	pi.domEpochs, pi.quietEpochs = 0, 0
	if pi.split {
		// Unreachable in practice (demote clears split), but a re-shared
		// page must always start joined.
		d.clearSplit(pi)
	}
	pi.hotEpochs, pi.calmEpochs = 0, 0
	pi.graceEpoch = true
	d.epochPages = append(d.epochPages, epochPage{vpn: vpn, pi: pi})
}

// noteSharedAccess feeds one instrumented access into the page's epoch
// accounting: the first toucher of the epoch is the dominance candidate,
// and everyone else's accesses veto demotion. With phases enabled it
// also keeps the writer-side tally (first writer vs everyone else's
// writes) the hot-page classifier thresholds against. Free in simulated
// cycles (bookkeeping only) and allocation-free.
func (d *Detector) noteSharedAccess(tid guest.TID, pi *pageInfo, write bool) {
	if pi.epochHits == 0 && pi.epochOther == 0 {
		pi.epochTID = tid
	}
	if tid == pi.epochTID {
		pi.epochHits++
	} else {
		pi.epochOther++
	}
	if d.phaseOn && write {
		if pi.epochWTID == guest.NoTID {
			pi.epochWTID = tid
		} else if tid != pi.epochWTID {
			pi.epochWOther++
		}
	}
}

// EpochSweep closes the current epoch: every Shared page's accounting is
// folded into its dominance/quiescence streak, qualifying pages are
// demoted — protection re-armed through the provider in one operation per
// page — and, when anything was demoted, the instrumented-PC set is
// cleared so demoted pages return to native-speed execution. Pages that
// are still genuinely shared re-instrument themselves through the
// ordinary fault path (they remain globally protected).
//
// Called by the epoch clock (internal/core) from the detector's own tick
// points, so it never runs concurrently with an access.
func (d *Detector) EpochSweep() {
	if !d.epochOn {
		return
	}
	d.C.EpochSweeps++
	w := 0
	demoted := false
	for _, e := range d.epochPages {
		pi := e.pi
		if pi.State != Shared {
			// Unmapped or externally transitioned while listed: drop.
			continue
		}
		if pi.graceEpoch {
			// The page turned Shared during this epoch: give it one
			// full epoch of accounting before any demotion or phase
			// verdict.
			pi.graceEpoch = false
			pi.epochTID = guest.NoTID
			pi.epochHits, pi.epochOther = 0, 0
			pi.epochWTID = guest.NoTID
			pi.epochWOther = 0
			d.epochPages[w] = e
			w++
			continue
		}
		if d.phaseOn {
			// Phase classification reads the same per-epoch counters the
			// demotion switch below does, and must run before they reset.
			// Order matters for the hot case: a many-writer epoch has
			// epochOther > 0, so the demotion switch resets the dominance
			// streak — hot pages can never demote out from under the
			// split phase.
			d.classifyPhase(pi)
		}
		switch {
		case pi.epochOther == 0 && pi.epochHits >= d.epoch.MinOwnerHits:
			if pi.domEpochs > 0 && pi.domTID == pi.epochTID {
				pi.domEpochs++
			} else {
				pi.domTID = pi.epochTID
				pi.domEpochs = 1
			}
			pi.quietEpochs = 0
		case pi.epochHits == 0 && pi.epochOther == 0:
			pi.quietEpochs++
			pi.domEpochs = 0
		default:
			// Genuinely shared this epoch (or too few owner hits to
			// judge): reset both streaks.
			pi.domEpochs = 0
			pi.quietEpochs = 0
		}
		pi.epochTID = guest.NoTID
		pi.epochHits, pi.epochOther = 0, 0
		pi.epochWTID = guest.NoTID
		pi.epochWOther = 0

		if d.epoch.DemoteAfter > 0 && pi.domEpochs >= d.epoch.DemoteAfter {
			demoted = d.demote(e.vpn, pi, Private, pi.domTID) || demoted
			// Off the list either way: demoted pages no longer need
			// accounting, and a failed rearm marks the page noDemote —
			// still Shared, still protected, never swept again.
			continue
		}
		if d.epoch.QuietAfter > 0 && pi.quietEpochs >= d.epoch.QuietAfter {
			demoted = d.demote(e.vpn, pi, Unused, guest.NoTID) || demoted
			continue
		}
		d.epochPages[w] = e
		w++
	}
	// Clear the dropped tail so demoted entries don't pin their pageInfo.
	for i := w; i < len(d.epochPages); i++ {
		d.epochPages[i] = epochPage{}
	}
	d.epochPages = d.epochPages[:w]
	if demoted {
		d.uninstrumentAll()
	}
}

// demote moves one Shared page back to Private(owner) or Unused and
// re-arms its protection through the provider in a single operation: the
// page is protected for every current and future thread, with the new
// owner (if any) alone re-granted access. The provider charges its own
// cost (hypercall, syscall, brokered mprotect).
//
// The rearm runs FIRST, and a failed (panicking) rearm aborts the
// demotion before any shadow state changes: the page stays Shared with
// its global protection armed, so no cross-thread access can slip
// through — soundness degrades to "this page keeps paying
// instrumentation forever", never to a protection hole. The page is
// marked noDemote and reports false so the sweep drops it from epoch
// accounting.
func (d *Detector) demote(vpn uint64, pi *pageInfo, to PageState, owner guest.TID) bool {
	if !d.tryRearm(vpn, owner) {
		d.C.RearmFailures++
		pi.noDemote = true
		pi.domEpochs, pi.quietEpochs = 0, 0
		return false
	}
	pi.State = to
	pi.Owner = owner
	pi.domEpochs, pi.quietEpochs = 0, 0
	if pi.split {
		// Quiet demotion of a split page (calm long enough to both join
		// and quiesce): the page leaves the split phase with its epoch
		// entry. Banked records were reconciled before this sweep ran.
		d.clearSplit(pi)
	}
	pi.hotEpochs, pi.calmEpochs = 0, 0
	pi.wasDemoted = true
	d.C.PagesShared--
	if to == Private {
		d.C.PagesPrivate++
		d.C.PagesDemotedPrivate++
	} else {
		d.C.PagesDemotedUnused++
	}
	return true
}

// tryRearm is the recovery boundary around the provider's rearm
// primitive — the one provider call made with shadow state mid-flight,
// and therefore the one that must never unwind through the detector.
func (d *Detector) tryRearm(vpn uint64, owner guest.TID) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	d.prov.RearmPage(vpn, owner)
	return true
}

// uninstrumentAll clears the instrumented-PC bitmap and flushes every
// re-JITed block, returning all instructions to their native form. Safe
// at any time: still-Shared pages remain globally protected, so their
// next access faults and re-instruments exactly as the first one did.
// Demoted pages' instructions run native from here on — the point of the
// whole exercise.
func (d *Detector) uninstrumentAll() {
	if d.ninstr == 0 {
		return
	}
	d.C.PCsUninstrumented += uint64(d.ninstr)
	for w, word := range d.instrumented {
		if word == 0 {
			continue
		}
		d.instrumented[w] = 0
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			if d.flush != nil {
				d.flush(isa.PC(w<<6 + bit))
			}
		}
	}
	d.ninstr = 0
}

// dropEpochRange forgets epoch entries for pages inside an unmapped
// segment (their pageInfo cells are gone with the region shadow).
func (d *Detector) dropEpochRange(vpnBase uint64, pages int) {
	if !d.epochOn || len(d.epochPages) == 0 {
		return
	}
	end := vpnBase + uint64(pages)
	w := 0
	for _, e := range d.epochPages {
		if e.vpn >= vpnBase && e.vpn < end {
			if e.pi.split {
				// Unmapped mid-split: the banked records were reconciled
				// by the VMA-change drain before this listener ran.
				d.clearSplit(e.pi)
			}
			continue
		}
		d.epochPages[w] = e
		w++
	}
	for i := w; i < len(d.epochPages); i++ {
		d.epochPages[i] = epochPage{}
	}
	d.epochPages = d.epochPages[:w]
}

// Package sharing implements AikidoSD, the Aikido sharing detector
// (paper §3.3). It drives the per-page state machine of Figure 3:
//
//	Unused ──first access by t──▶ Private(t) ──access by u≠t──▶ Shared
//
// using AikidoVM's per-thread page protection: all application pages start
// protected for everyone; the first fault makes the page private to the
// faulting thread (unprotected for it alone); a fault by any other thread
// makes the page shared and globally protected forever. From then on, every
// *instruction* that faults on a shared page is instrumented — its blocks
// are flushed and re-JITed with analysis instrumentation and its accesses
// are redirected to the page's mirror (Figure 4) — so the shared-data
// analysis sees exactly the accesses that touch shared pages while private
// accesses run at native speed.
package sharing

import (
	"fmt"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/isa"
	"repro/internal/mirror"
	"repro/internal/staticanalysis"
	"repro/internal/stats"
	"repro/internal/umbra"
	"repro/internal/vm"
)

// Provider is the per-thread page-protection surface AikidoSD consumes —
// the subset of internal/provider.Interface the detector needs. AikidoVM
// (the paper's hypervisor) is the canonical implementation; the dOS-style
// and DTHREADS-style baselines of §7.1 satisfy it too, which is what lets
// the providers ablation swap the mechanism under an unchanged detector.
// Implementations charge their own operation costs to the simulated clock.
type Provider interface {
	ProtectPage(vpn uint64)
	ProtectRange(vpnBase uint64, pages int)
	ClearRange(vpnBase uint64, pages int)
	UnprotectForThread(tid guest.TID, vpn uint64)
	// RearmPage re-protects one page for every current and future thread
	// in a single operation, optionally re-granting access to one owner
	// (owner == guest.NoTID re-arms for everyone). The epoch demotion
	// primitive: Shared→Private(owner) and Shared→Unused both reduce to
	// one protection change instead of a protect+unprotect pair.
	RearmPage(vpn uint64, owner guest.TID)
	RegisterMirrorRange(vpnBase uint64, pages int)
	// FaultInfo reports whether the delivered fault was caused by
	// provider protections and, if so, the true faulting address.
	FaultInfo(f *hypervisor.Fault) (addr uint64, ours bool)
	// ProtChangeCost is the cost of one protection change, used to model
	// DynamoRIO's §3.4 unprotect/reprotect dance.
	ProtChangeCost() uint64
}

// PageState is the sharing state of one application page.
type PageState uint8

// Page states (Figure 3). Shared is terminal under the paper's state
// machine; with an EpochPolicy enabled, epoch.go adds the demotion edges
// Shared→Private(owner) and Shared→Unused.
const (
	// Unused: no thread has touched the page since protection.
	Unused PageState = iota
	// Private: exactly one thread has touched the page.
	Private
	// Shared: at least two threads have touched the page.
	Shared
)

// String names the state.
func (s PageState) String() string {
	switch s {
	case Unused:
		return "unused"
	case Private:
		return "private"
	case Shared:
		return "shared"
	}
	return "state?"
}

// pageInfo is the per-page metadata stored in the first shadow map. The
// epoch fields pack the owner-dominance accounting of epoch-based
// re-privatization into the same cell: per epoch, who touched the page
// first and whether anyone else did, plus the cross-epoch dominance and
// quiescence streaks the demotion policy thresholds against.
type pageInfo struct {
	State PageState
	Owner guest.TID // valid when State == Private

	// Per-epoch accounting (reset by every EpochSweep).
	epochTID   guest.TID // first thread to touch the page this epoch
	epochHits  uint32    // accesses by epochTID this epoch
	epochOther uint32    // accesses by every other thread this epoch
	// Per-epoch writer accounting (phase.go; reset with the fields above).
	epochWTID   guest.TID // first thread to WRITE the page this epoch
	epochWOther uint32    // writes by threads other than epochWTID this epoch
	// Cross-epoch streaks.
	domTID      guest.TID // dominance candidate across consecutive epochs
	domEpochs   uint8     // consecutive epochs dominated by domTID
	quietEpochs uint8     // consecutive access-free epochs
	hotEpochs   uint8     // consecutive many-writer epochs (phase.go)
	calmEpochs  uint8     // consecutive not-hot epochs (phase.go)
	graceEpoch  bool      // just turned Shared; exempt from the next sweep
	wasDemoted  bool      // page was demoted at least once (reshare stats)
	noDemote    bool      // RearmPage failed for this page; never demote it again
	// split marks the page as in the Doppel-style split phase (phase.go):
	// its accesses are banked through the PhaseBanker and reconciled at
	// the next drain point instead of hitting analysis state inline.
	split bool
	// preSeeded marks pages installed Private(owner) by the static
	// pre-pass (static.go) rather than by a classification fault.
	preSeeded bool
}

// Analysis is the shared-data analysis plugged into AikidoSD — it receives
// exactly the accesses that target shared pages.
type Analysis interface {
	OnSharedAccess(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool)
}

// Counters describes AikidoSD behaviour.
type Counters struct {
	// SharedPageAccesses counts instrumented accesses that actually hit a
	// shared page (column 3 of Table 2).
	SharedPageAccesses uint64
	// PrivateChecked counts instrumented (indirect) accesses whose
	// runtime check found a private page and skipped instrumentation.
	PrivateChecked uint64
	// PagesPrivate / PagesShared count state transitions.
	PagesPrivate uint64
	PagesShared  uint64
	// FaultsHandled counts Aikido faults routed to the detector;
	// SpuriousFaults counts faults on pages already private to the
	// faulting thread (normally zero).
	FaultsHandled  uint64
	SpuriousFaults uint64
	// InstrumentedPCs counts distinct instructions instrumented.
	InstrumentedPCs uint64
	// DRUnprotects counts DynamoRIO runtime accesses to protected pages
	// resolved with the unprotect/reprotect dance (§3.4).
	DRUnprotects uint64
	// PagesProtected counts pages protected at startup/mmap time.
	PagesProtected uint64

	// Epoch re-privatization (epoch.go; all zero when disabled).
	// EpochSweeps counts epoch-boundary sweeps; PagesDemotedPrivate and
	// PagesDemotedUnused count Shared→Private(owner) and Shared→Unused
	// demotions; PagesReshared counts demoted pages that later turned
	// Shared again (the re-protection fault fired, proving no
	// cross-thread access slipped through); PCsUninstrumented counts
	// instrumented instructions returned to native form.
	EpochSweeps         uint64
	PagesDemotedPrivate uint64
	PagesDemotedUnused  uint64
	PagesReshared       uint64
	PCsUninstrumented   uint64
	// RearmFailures counts demotions abandoned because the provider's
	// RearmPage failed (panicked): the page keeps its Shared state and
	// its global protection — soundness is untouched — and is excluded
	// from all further demotion. Nonzero only under fault injection or a
	// genuinely broken provider.
	RearmFailures uint64

	// Split phases (phase.go; all zero when disabled). PagesSplit counts
	// Shared→split flips (a hot streak crossed SplitAfter); PagesJoined
	// counts split→joined flips (calm streak, demotion, or re-share).
	PagesSplit  uint64
	PagesJoined uint64

	// Static privacy pre-pass (static.go; all zero without -static).
	// PCsStaticallyPruned counts memory-referencing PCs the pre-pass
	// proved private — the detector never instruments them.
	// PagesPreSeeded counts pages installed as Private(owner) before
	// first execution, eliding their classification fault.
	// StaticTripwires counts pruned PCs that faulted on a Private(other)
	// or Shared page anyway — a refuted proof. The detector un-prunes and
	// instruments such a PC (the page protections are the safety net, so
	// no finding is ever lost); in verify mode it hard-fails instead.
	PCsStaticallyPruned uint64
	PagesPreSeeded      uint64
	StaticTripwires     uint64
}

// Detector is one AikidoSD instance.
type Detector struct {
	p    *guest.Process
	prov Provider
	um   *umbra.Umbra
	mir  *mirror.Manager

	pages *umbra.ShadowMap[pageInfo]
	// instrumented is a bitmap keyed by code-cache PC (PCs are dense
	// instruction indices): the membership test on the fault path and at
	// block-build time is a shift+mask, not a map probe.
	instrumented []uint64
	ninstr       int
	analysis     Analysis

	// flush is wired to the DBI engine's Flush (SetEngine).
	flush func(pc isa.PC) int

	clock *stats.Clock
	costs stats.CostModel

	// live reports concurrently live guest threads; mirror redirects pay
	// a contention charge per extra thread (all redirected accesses
	// target the mirror copies of shared data, so their cache lines
	// ping-pong between cores). Nil means no contention accounting.
	live func() int

	// Epoch re-privatization (epoch.go): the policy, its enable bit, the
	// epoch clock's tick hook, and the dense list of Shared pages the
	// sweep walks. The tick fires ONLY from the instrumented PreAccess
	// path — never from HandleFault, where a sweep demoting the faulting
	// page to the faulting thread would make the delivered fault look
	// stale (a spurious fault).
	epoch      EpochPolicy
	epochOn    bool
	tick       func()
	epochPages []epochPage

	// Split phases (phase.go): the policy, its enable bit, the banker
	// split-page accesses route to, and the current split-page count.
	phase   PhasePolicy
	phaseOn bool
	banker  PhaseBanker
	nsplit  int

	// Static privacy pre-pass (static.go): the applied summary, the
	// pruned-PC bitmap (same keying as instrumented), and the verify bit
	// that turns tripwires into hard failures.
	static       *staticanalysis.Summary
	pruned       []uint64
	staticVerify bool

	// enabled gates page protection; Attach protects existing VMAs once
	// at the end so partially constructed state never observes faults.
	enabled bool
	// noMirror switches instrumented shared accesses from mirror
	// redirection to an unprotect/access/reprotect sequence — the
	// strategy mirror pages exist to avoid (ablation; cf. §7.2).
	noMirror bool

	C Counters
}

// Attach builds an AikidoSD over an assembled Aikido stack and protects the
// application's entire address space through the given protection provider
// (AikidoVM in the paper's configuration; the §7.1 baselines in the
// providers ablation). The analysis may be nil (pure sharing profiling).
func Attach(p *guest.Process, prov Provider, um *umbra.Umbra,
	mir *mirror.Manager, analysis Analysis, clock *stats.Clock, costs stats.CostModel) *Detector {

	d := &Detector{
		p: p, prov: prov, um: um, mir: mir,
		pages:        umbra.NewShadowMap[pageInfo](um, vm.PageSize),
		instrumented: make([]uint64, (len(p.Prog.Code)+63)/64),
		analysis:     analysis,
		clock:        clock,
		costs:        costs,
	}

	// Protect every existing application page, then keep protecting new
	// segments as they appear (mmap/brk interception).
	d.enabled = true
	p.AddVMAListener(d)
	return d
}

// SetEngine wires the code-cache flush used when an instruction must be
// re-JITed with instrumentation.
func (d *Detector) SetEngine(e *dbi.Engine) { d.flush = e.Flush }

// DisableMirror switches to the unprotect/reprotect ablation (no mirror
// pages): each instrumented shared access temporarily lifts the page's
// global protection and restores it afterwards, paying two hypercalls per
// access. Benchmarked by the ablation harness to quantify what mirror pages
// buy.
func (d *Detector) DisableMirror() { d.noMirror = true }

// SetLiveThreads wires the live-thread count used for mirror contention
// accounting.
func (d *Detector) SetLiveThreads(f func() int) { d.live = f }

// mirrorContention returns the per-redirect contention charge: quadratic
// in the number of extra live threads, because every redirected access
// lands on the mirror copy of shared data and those lines ping-pong
// between all cores at once. Writes pay double (each store transfers
// exclusive ownership of the line); reads pay half (shared copies
// coexist until the next write).
func (d *Detector) mirrorContention(write bool) uint64 {
	if d.live == nil {
		return 0
	}
	n := uint64(0)
	if l := d.live(); l > 1 {
		n = uint64(l - 1)
	}
	c := d.costs.MirrorContention * n * n
	if write {
		return 2 * c
	}
	return c / 2
}

// VMAAdded implements guest.VMAListener: new application segments are
// protected for all threads (one batched hypercall per segment).
func (d *Detector) VMAAdded(v *guest.VMA) {
	if !d.enabled {
		return
	}
	switch v.Kind {
	case guest.VMAShadow:
		return
	case guest.VMAMirror:
		// Tell the provider about the mirror alias: AikidoVM's nested-
		// paging mode keys protections by guest-physical frame and needs
		// an unprotected alternate EPT view for the mirror range.
		d.prov.RegisterMirrorRange(vm.PageNum(v.Base), v.Pages)
		return
	}
	d.prov.ProtectRange(vm.PageNum(v.Base), v.Pages)
	d.C.PagesProtected += uint64(v.Pages)
	if v.Kind == guest.VMAStack && v.Owner != guest.NoTID {
		// Static pre-pass: stacks are per-thread by construction, so the
		// statically-touched stack pages start Private(owner) (no-op
		// until a summary with a clean stack proof is applied).
		d.preSeedStack(v)
	}
}

// VMARemoved implements guest.VMAListener.
func (d *Detector) VMARemoved(v *guest.VMA) {
	switch v.Kind {
	case guest.VMAShadow, guest.VMAMirror:
		return
	}
	d.prov.ClearRange(vm.PageNum(v.Base), v.Pages)
	d.dropEpochRange(vm.PageNum(v.Base), v.Pages)
}

// PageStateOf reports the sharing state of the page containing addr
// (profiling API; used by the sharing-profile example and tests).
func (d *Detector) PageStateOf(addr uint64) (PageState, guest.TID) {
	pi := d.pages.Get(0, addr)
	if pi == nil {
		return Unused, guest.NoTID
	}
	return pi.State, pi.Owner
}

// SharedPages counts pages currently in the Shared state.
func (d *Detector) SharedPages() uint64 { return d.C.PagesShared }

// InstrumentedPCs returns the number of distinct instrumented instructions.
func (d *Detector) InstrumentedPCs() int { return d.ninstr }

// isInstrumented tests the PC bitmap.
func (d *Detector) isInstrumented(pc isa.PC) bool {
	w := int(pc >> 6)
	return w < len(d.instrumented) && d.instrumented[w]&(1<<(pc&63)) != 0
}

// HandleFault is the master-signal-handler continuation for Aikido faults
// (wired as dbi.Engine.OnFault by the system assembly, §3.4). It performs
// the Figure 3 transitions and re-JITs faulting instructions on shared
// pages.
func (d *Detector) HandleFault(t *guest.Thread, pc isa.PC, in isa.Instr, f *hypervisor.Fault) dbi.FaultOutcome {
	// Obtain the true faulting address the way the real handler does —
	// for AikidoVM, from the registered slot rather than the (fake)
	// delivery address (§3.2.5).
	addr, ours := d.prov.FaultInfo(f)
	if !ours {
		// Genuine segmentation fault in the application: not ours.
		return dbi.FaultFatal
	}
	d.C.FaultsHandled++
	vpn := vm.PageNum(addr)
	pi := d.pages.Get(t.ID, addr)
	if pi == nil {
		return dbi.FaultFatal // fault outside every known region
	}

	switch pi.State {
	case Unused:
		// First scenario of Figure 3: make the page private to t.
		pi.State = Private
		pi.Owner = t.ID
		d.C.PagesPrivate++
		d.prov.UnprotectForThread(t.ID, vpn)
		return dbi.FaultRetry

	case Private:
		if pi.Owner == t.ID {
			// The page is supposedly ours yet we faulted — only
			// possible after external protection churn. Repair and
			// count it.
			d.C.SpuriousFaults++
			d.prov.UnprotectForThread(t.ID, vpn)
			return dbi.FaultRetry
		}
		// Third scenario: a second thread touched the page — it is now
		// shared and globally protected (terminally so unless an epoch
		// policy later demotes it).
		pi.State = Shared
		pi.Owner = guest.NoTID
		d.C.PagesPrivate--
		d.C.PagesShared++
		d.prov.ProtectPage(vpn)
		d.noteShared(vpn, pi)
		// A pruned PC participating in a sharing transition refutes its
		// privacy proof: tripwire (and un-prune, so the instrumentation
		// below takes effect and the access stops fault-looping).
		d.tripwire(t.ID, pc, addr)
		d.instrument(pc)
		return dbi.FaultRetry

	case Shared:
		// Fourth scenario: a new instruction touched a shared page.
		d.tripwire(t.ID, pc, addr)
		d.instrument(pc)
		return dbi.FaultRetry
	}
	panic(fmt.Sprintf("sharing: invalid page state %d", pi.State))
}

// instrument marks pc as accessing shared data and flushes its cached
// blocks so the next execution is re-JITed with instrumentation (§3.3.2).
func (d *Detector) instrument(pc isa.PC) {
	if d.isInstrumented(pc) {
		return
	}
	if w := int(pc >> 6); w >= len(d.instrumented) {
		nb := make([]uint64, w+1)
		copy(nb, d.instrumented)
		d.instrumented = nb
	}
	d.instrumented[pc>>6] |= 1 << (pc & 63)
	d.ninstr++
	d.C.InstrumentedPCs++
	if d.flush != nil {
		d.flush(pc)
	}
}

// Instrument implements dbi.Tool: instructions known to access shared pages
// get the Figure 4 instrumentation; everything else runs untouched.
func (d *Detector) Instrument(pc isa.PC, in isa.Instr) *dbi.Plan {
	if !in.Op.IsMemRef() {
		return nil
	}
	if d.isPruned(pc) {
		// Statically proven private: never instrumented. In verify mode
		// the PC keeps a tripwire hook instead, which hard-fails the run
		// if the "private" access ever observes a Shared page.
		if d.staticVerify {
			return d.tripwirePlan()
		}
		return nil
	}
	if !d.isInstrumented(pc) {
		return nil
	}
	direct := in.Op.IsDirect()
	return &dbi.Plan{PreAccess: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) uint64 {
		if d.tick != nil {
			// Epoch boundary check (allocation-free): a due sweep runs
			// before this access observes page state, so demotions are
			// never applied mid-lookup. This is the only tick point — in
			// particular the fault path never ticks, so a delivered
			// fault can never be made stale by a sweep that demotes the
			// faulting page to the faulting thread mid-handling.
			d.tick()
		}
		// The emitted Figure-4 sequence: inlined translation, branch,
		// mirror-address computation, plus the re-JITed block's lost
		// optimization opportunities.
		d.clock.Charge(d.costs.InstrumentedExec)
		// shd_addr = app_to_shd(app_addr): the page-state lookup goes
		// through Umbra's translation caches (charged inside Get).
		pi := d.pages.Get(tid, addr)
		if pi == nil {
			return addr
		}
		if !direct {
			// Indirect instructions carry the emitted shared/private
			// branch; direct ones were rewritten unconditionally.
			d.clock.Charge(d.costs.SharedCheck)
			if pi.State != Shared {
				// Private fast-ish path: jump over instrumentation
				// and run the original access (it may fault and
				// drive a state transition).
				d.C.PrivateChecked++
				return addr
			}
		} else if d.epochOn && pi.State != Shared {
			// Transitional safety under demotion: a sweep may have just
			// demoted this page, and this unconditional-redirect plan
			// survives in already-JITed blocks until the flush takes
			// effect at the next block entry. Redirecting through the
			// mirror here would let a cross-thread access slip past the
			// re-armed protection without faulting — run the original
			// access instead, so it faults and re-drives the Figure 3
			// transition. The check is charged only on this exit, not
			// per direct access: it models the stale-window execution a
			// real system would eliminate with synchronous block
			// invalidation, not an emitted branch — steady-state direct
			// code is either the unconditional rewrite (page Shared) or
			// fully native (rebuilt after demotion), which is what
			// keeps the -epoch PARSEC report byte-identical to the
			// terminal-Shared baseline.
			d.clock.Charge(d.costs.SharedCheck)
			d.C.PrivateChecked++
			return addr
		}
		// Shared: run the analysis, then make the access succeed
		// despite the global protection.
		d.C.SharedPageAccesses++
		if d.epochOn && pi.State == Shared {
			d.noteSharedAccess(tid, pi, write)
		}
		if d.analysis != nil {
			if pi.split {
				// Split phase (phase.go): bank the access in the acting
				// thread's private delta ring instead of touching
				// canonical analysis state; the reconcile merge delivers
				// it at the next drain point. pi.split is only ever set
				// with a banker armed, and only flips at sweep
				// boundaries, so this access is delivered before any
				// phase change it could race with.
				d.banker.OnSplitAccess(tid, pc, addr, size, write)
			} else {
				d.analysis.OnSharedAccess(tid, pc, addr, size, write)
			}
		}
		if d.noMirror {
			// Ablation: unprotect for this thread around the access
			// (reprotected in PostAccess below).
			d.prov.UnprotectForThread(tid, vm.PageNum(addr))
			return addr
		}
		if m, ok := d.mir.Translate(addr); ok {
			d.clock.Charge(d.costs.MirrorRedirect + d.mirrorContention(write))
			return m
		}
		// No mirror (should not happen for app segments): let the
		// original access fault visibly rather than silently pass.
		return addr
	}, PostAccess: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) {
		if !d.noMirror {
			return
		}
		pi := d.pages.Get(tid, addr)
		if pi != nil && pi.State == Shared {
			d.prov.ProtectPage(vm.PageNum(addr))
		}
	}}
}

// TouchCode models DynamoRIO's own reads of application code pages during
// block building (§3.4): a read of a page protected for this thread faults
// inside DynamoRIO, which unprotects the page for the thread, performs the
// read, notes the page, and reprotects it before returning to application
// code. No sharing-state transition occurs.
func (d *Detector) TouchCode(tid guest.TID, addr uint64) {
	pi := d.pages.Get(tid, addr)
	if pi == nil {
		return
	}
	faults := false
	switch pi.State {
	case Unused, Shared:
		faults = true
	case Private:
		faults = pi.Owner != tid
	}
	if faults {
		d.C.DRUnprotects++
		// Fault into DynamoRIO's handler + unprotect + reprotect at the
		// provider's protection-change price.
		d.clock.Charge(d.costs.Fault + 2*d.prov.ProtChangeCost())
	}
}

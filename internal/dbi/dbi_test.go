package dbi

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vm"
)

func run(t *testing.T, prog *isa.Program, tool Tool, cfg Config) (*Engine, *Result) {
	t.Helper()
	p, err := guest.NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	e := New(p, nil, tool, nil, stats.DefaultCosts(), cfg)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return e, res
}

func TestArithmeticAndControlFlow(t *testing.T) {
	b := isa.NewBuilder("arith")
	sum := b.GlobalU64(0)
	// sum = Σ i for i in [0,10)
	b.MovImm(isa.R1, 0) // acc
	b.LoopN(isa.R2, 10, func(b *isa.Builder) {
		b.Add(isa.R1, isa.R1, isa.R2)
	})
	b.StoreAbs(sum, isa.R1)
	b.Halt()
	prog := b.MustFinish()

	_, res := run(t, prog, nil, DefaultConfig())
	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	_ = p
	// Re-run to inspect memory via a fresh engine exposing the process.
	p2, _ := guest.NewProcess(vm.NewMachine(), prog)
	e2 := New(p2, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	got, fault := e2.Mem.Load(1, sum, 8, true)
	if fault != nil {
		t.Fatal(fault)
	}
	if got != 45 {
		t.Errorf("sum = %d, want 45", got)
	}
	if res.Counters.Instructions == 0 || res.Counters.MemRefs != 1 {
		t.Errorf("counters: %+v", res.Counters)
	}
}

func TestLoadStoreIndirect(t *testing.T) {
	b := isa.NewBuilder("mem")
	arr := b.GlobalArray(8)
	b.MovImm(isa.R1, int64(arr))
	// a[i] = i*3 for i in 0..7, then sum them.
	b.LoopN(isa.R2, 8, func(b *isa.Builder) {
		b.MovImm(isa.R3, 3)
		b.Mul(isa.R4, isa.R2, isa.R3)
		b.Shl(isa.R5, isa.R2, 3)
		b.Add(isa.R6, isa.R1, isa.R5)
		b.Store(isa.R6, 0, isa.R4)
	})
	b.MovImm(isa.R7, 0)
	b.LoopN(isa.R2, 8, func(b *isa.Builder) {
		b.Shl(isa.R5, isa.R2, 3)
		b.Add(isa.R6, isa.R1, isa.R5)
		b.Load(isa.R4, isa.R6, 0)
		b.Add(isa.R7, isa.R7, isa.R4)
	})
	res := b.GlobalU64(0)
	b.StoreAbs(res, isa.R7)
	b.Halt()
	prog := b.MustFinish()

	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Mem.Load(1, res, 8, true)
	if got != 84 { // 3*(0+..+7) = 84
		t.Errorf("sum = %d, want 84", got)
	}
	if e.C.MemRefs != 8+8+1 {
		t.Errorf("MemRefs = %d, want 17", e.C.MemRefs)
	}
}

func TestMultiThreadProducerConsumer(t *testing.T) {
	b := isa.NewBuilder("threads")
	flag := b.GlobalU64(0)
	data := b.GlobalU64(0)

	// main: spawn worker, wait for flag under lock, read data.
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("worker", isa.R5) // R0 = child tid
	b.Mov(isa.R9, isa.R0)
	b.Label("spin")
	b.Lock(1)
	b.LoadAbs(isa.R1, flag)
	b.Unlock(1)
	b.BrImm(isa.EQ, isa.R1, 0, "spin")
	b.LoadAbs(isa.R2, data)
	b.ThreadJoin(isa.R9)
	out := b.GlobalU64(0)
	b.StoreAbs(out, isa.R2)
	b.Halt()

	b.Label("worker")
	b.MovImm(isa.R1, 1234)
	b.StoreAbs(data, isa.R1)
	b.Lock(1)
	b.MovImm(isa.R1, 1)
	b.StoreAbs(flag, isa.R1)
	b.Unlock(1)
	b.Halt()
	prog := b.MustFinish()

	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.Mem.Load(1, out, 8, true)
	if got != 1234 {
		t.Errorf("consumer read %d, want 1234", got)
	}
	if p.ContextSwitches == 0 {
		t.Error("no context switches in a blocking two-thread program")
	}
}

func TestBarrierSynchronizesPhases(t *testing.T) {
	const workers = 4
	b := isa.NewBuilder("barrier")
	cells := b.GlobalArray(workers)
	sum := b.GlobalU64(0)

	// main spawns workers that each store (tid-arg+1) into their cell and
	// hit a barrier; main also participates, then sums after the barrier.
	for i := 0; i < workers; i++ {
		b.MovImm(isa.R5, int64(i))
		b.ThreadCreate("worker", isa.R5)
	}
	b.Barrier(9, workers+1)
	b.MovImm(isa.R7, 0)
	b.LoopN(isa.R2, workers, func(b *isa.Builder) {
		b.Shl(isa.R5, isa.R2, 3)
		b.MovImm(isa.R6, int64(cells))
		b.Add(isa.R6, isa.R6, isa.R5)
		b.Load(isa.R4, isa.R6, 0)
		b.Add(isa.R7, isa.R7, isa.R4)
	})
	b.StoreAbs(sum, isa.R7)
	b.MovImm(isa.R0, 0)
	b.Syscall(isa.SysExit)

	b.Label("worker")
	// R0 = index. cell[index] = index+1
	b.Shl(isa.R1, isa.R0, 3)
	b.MovImm(isa.R2, int64(cells))
	b.Add(isa.R2, isa.R2, isa.R1)
	b.AddImm(isa.R3, isa.R0, 1)
	b.Store(isa.R2, 0, isa.R3)
	b.Barrier(9, workers+1)
	b.Halt()
	prog := b.MustFinish()

	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.Mem.Load(1, sum, 8, true)
	if got != 1+2+3+4 {
		t.Errorf("sum = %d, want 10", got)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit code = %d", res.ExitCode)
	}
}

func TestWriteSyscallThroughEngine(t *testing.T) {
	b := isa.NewBuilder("hello")
	msg := b.Global(3, 1)
	copy(b.Data()[msg-isa.DataBase:], "hi\n")
	b.MovImm(isa.R0, int64(msg))
	b.MovImm(isa.R1, 3)
	b.Syscall(isa.SysWrite)
	b.Halt()
	_, res := run(t, b.MustFinish(), nil, DefaultConfig())
	if res.Console != "hi\n" {
		t.Errorf("console = %q", res.Console)
	}
}

func TestDeadlockReported(t *testing.T) {
	b := isa.NewBuilder("deadlock")
	// main takes lock 1 then 2; worker takes 2 then 1, with a barrier to
	// force the interleaving.
	b.Lock(1)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("w", isa.R5)
	b.Barrier(3, 2)
	b.Lock(2)
	b.Halt()
	b.Label("w")
	b.Lock(2)
	b.Barrier(3, 2)
	b.Lock(1)
	b.Halt()
	prog := b.MustFinish()
	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

// planTool instruments every memory instruction, counting callbacks.
type planTool struct {
	calls int
	addrs []uint64
}

func (pt *planTool) Instrument(pc isa.PC, in isa.Instr) *Plan {
	if !in.Op.IsMemRef() {
		return nil
	}
	return &Plan{PreAccess: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) uint64 {
		pt.calls++
		pt.addrs = append(pt.addrs, addr)
		return addr
	}}
}

func TestToolSeesEveryMemoryAccess(t *testing.T) {
	b := isa.NewBuilder("tool")
	g := b.GlobalU64(0)
	b.MovImm(isa.R1, 7)
	b.LoopN(isa.R2, 5, func(b *isa.Builder) {
		b.StoreAbs(g, isa.R1)
		b.LoadAbs(isa.R3, g)
	})
	b.Halt()
	tool := &planTool{}
	e, res := run(t, b.MustFinish(), tool, DefaultConfig())
	if tool.calls != 10 {
		t.Errorf("tool calls = %d, want 10", tool.calls)
	}
	if res.Counters.InstrumentedExecs != 10 {
		t.Errorf("InstrumentedExecs = %d, want 10", res.Counters.InstrumentedExecs)
	}
	for _, a := range tool.addrs {
		if a != g {
			t.Errorf("tool saw address %#x, want %#x", a, g)
		}
	}
	_ = e
}

// redirectTool bounces accesses to a second address.
type redirectTool struct{ from, to uint64 }

func (rt *redirectTool) Instrument(pc isa.PC, in isa.Instr) *Plan {
	if !in.Op.IsMemRef() {
		return nil
	}
	return &Plan{PreAccess: func(_ guest.TID, _ isa.PC, addr uint64, _ uint8, _ bool) uint64 {
		if addr == rt.from {
			return rt.to
		}
		return addr
	}}
}

func TestToolRedirection(t *testing.T) {
	b := isa.NewBuilder("redir")
	a := b.GlobalU64(0)
	bb := b.GlobalU64(0)
	b.MovImm(isa.R1, 99)
	b.StoreAbs(a, isa.R1) // redirected to bb
	b.Halt()
	prog := b.MustFinish()

	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, &redirectTool{from: a, to: bb}, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	va, _ := e.Mem.Load(1, a, 8, true)
	vb, _ := e.Mem.Load(1, bb, 8, true)
	if va != 0 || vb != 99 {
		t.Errorf("a=%d b=%d, want 0/99 (redirect)", va, vb)
	}
}

func TestFlushRebuildsBlocks(t *testing.T) {
	b := isa.NewBuilder("flush")
	g := b.GlobalU64(0)
	b.Label("top")
	b.LoadAbs(isa.R1, g)
	b.AddImm(isa.R1, isa.R1, 1)
	b.StoreAbs(g, isa.R1)
	b.BrImm(isa.LT, isa.R1, 3, "top")
	b.Halt()
	prog := b.MustFinish()

	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	built := e.C.BlocksBuilt
	if built == 0 {
		t.Fatal("no blocks built")
	}
	n := e.Flush(prog.Labels["top"])
	if n == 0 {
		t.Fatal("flush removed nothing")
	}
	if e.C.BlocksFlushed != uint64(n) {
		t.Error("flush count mismatch")
	}
}

func TestFaultHandlerRetry(t *testing.T) {
	// A program storing to an unmapped address; the handler maps memory…
	// here we instead verify fatal vs retry policy with a tool that
	// redirects after the first fault.
	b := isa.NewBuilder("fault")
	g := b.GlobalU64(0)
	bad := uint64(0x7000_0000_0000) // unmapped
	b.MovImm(isa.R1, 5)
	b.StoreAbs(bad, isa.R1)
	b.LoadAbs(isa.R2, g)
	b.Halt()
	prog := b.MustFinish()

	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	var handled int
	var redirect bool
	tool := &redirectTool{from: bad, to: g}
	e := New(p, nil, instrumentIf(func() bool { return redirect }, tool), nil, stats.DefaultCosts(), DefaultConfig())
	e.OnFault = func(t *guest.Thread, pc isa.PC, in isa.Instr, f *hypervisor.Fault) FaultOutcome {
		handled++
		redirect = true
		e.Flush(pc)
		return FaultRetry
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("retry path failed: %v", err)
	}
	if handled != 1 {
		t.Errorf("handler invoked %d times, want 1", handled)
	}
	v, _ := e.Mem.Load(1, g, 8, true)
	if v != 5 {
		t.Errorf("redirected store wrote %d, want 5", v)
	}
	if e.C.Retries != 1 {
		t.Errorf("Retries = %d, want 1", e.C.Retries)
	}
}

// instrumentIf wraps a tool, active only when cond() is true at build time.
type condTool struct {
	cond func() bool
	t    Tool
}

func instrumentIf(cond func() bool, t Tool) Tool { return &condTool{cond, t} }

func (c *condTool) Instrument(pc isa.PC, in isa.Instr) *Plan {
	if !c.cond() {
		return nil
	}
	return c.t.Instrument(pc, in)
}

func TestUnhandledFaultIsFatal(t *testing.T) {
	b := isa.NewBuilder("segv")
	b.MovImm(isa.R1, 1)
	b.StoreAbs(0x7000_0000_0000, isa.R1)
	b.Halt()
	p, _ := guest.NewProcess(vm.NewMachine(), b.MustFinish())
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err == nil {
		t.Fatal("unmapped store did not kill the run")
	}
}

func TestTracePromotionAndLinking(t *testing.T) {
	b := isa.NewBuilder("hot")
	b.LoopN(isa.R1, 500, func(b *isa.Builder) { b.Nop() })
	b.Halt()
	cfg := DefaultConfig()
	cfg.TraceThreshold = 16
	e, _ := run(t, b.MustFinish(), nil, cfg)
	if e.C.TraceDispatches == 0 {
		t.Error("hot loop never dispatched via trace")
	}
	if e.C.LinkedDispatches == 0 {
		t.Error("no linked dispatches")
	}
	if e.C.BlocksBuilt > 10 {
		t.Errorf("loop rebuilt blocks: %d", e.C.BlocksBuilt)
	}
}

func TestQuantumSwitchesThreads(t *testing.T) {
	// Two CPU-bound threads with no synchronization must interleave.
	b := isa.NewBuilder("preempt")
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("spin", isa.R5)
	b.Mov(isa.R9, isa.R0)
	b.LoopN(isa.R1, 2000, func(b *isa.Builder) { b.Nop() })
	b.ThreadJoin(isa.R9)
	b.Halt()
	b.Label("spin")
	b.LoopN(isa.R1, 2000, func(b *isa.Builder) { b.Nop() })
	b.Halt()
	prog := b.MustFinish()
	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if p.ContextSwitches < 10 {
		t.Errorf("ContextSwitches = %d, want many (preemption)", p.ContextSwitches)
	}
}

func TestRuntimeTouchFiresPerCodePage(t *testing.T) {
	b := isa.NewBuilder("touch")
	b.LoopN(isa.R1, 3, func(b *isa.Builder) { b.Nop() })
	b.Halt()
	prog := b.MustFinish()
	p, _ := guest.NewProcess(vm.NewMachine(), prog)
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	var touched []uint64
	e.RuntimeTouch = func(tid guest.TID, addr uint64) { touched = append(touched, addr) }
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(touched) == 0 {
		t.Fatal("block builder never touched code pages")
	}
	for _, a := range touched {
		if a < isa.CodeBase || a >= isa.CodeBase+prog.CodeBytes()+4096 {
			t.Errorf("touched non-code address %#x", a)
		}
	}
}

func TestMaxStepsGuard(t *testing.T) {
	b := isa.NewBuilder("inf")
	b.Label("x")
	b.Jmp("x")
	b.Halt()
	cfg := DefaultConfig()
	cfg.MaxSteps = 10_000
	p, _ := guest.NewProcess(vm.NewMachine(), b.MustFinish())
	e := New(p, nil, nil, nil, stats.DefaultCosts(), cfg)
	if _, err := e.Run(); err == nil {
		t.Fatal("infinite loop not caught by MaxSteps")
	}
}

package dbi

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vm"
)

// BenchmarkInterpreterThroughput measures raw simulator speed
// (instructions per second) on a tight ALU+memory loop — the denominator
// of every experiment's wall-clock cost.
func BenchmarkInterpreterThroughput(b *testing.B) {
	bld := isa.NewBuilder("throughput")
	g := bld.GlobalU64(0)
	bld.MovImm(isa.R1, int64(g))
	bld.LoopN(isa.R2, 1000, func(bld *isa.Builder) {
		bld.Add(isa.R3, isa.R3, isa.R2)
		bld.Store(isa.R1, 0, isa.R3)
		bld.Load(isa.R4, isa.R1, 0)
	})
	bld.Halt()
	prog := bld.MustFinish()

	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		p, err := guest.NewProcess(vm.NewMachine(), prog)
		if err != nil {
			b.Fatal(err)
		}
		e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Counters.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkBlockBuild measures code-cache population (JIT) cost.
func BenchmarkBlockBuild(b *testing.B) {
	bld := isa.NewBuilder("build")
	for i := 0; i < 4000; i++ {
		bld.Nop()
	}
	bld.Halt()
	prog := bld.MustFinish()
	p, err := guest.NewProcess(vm.NewMachine(), prog)
	if err != nil {
		b.Fatal(err)
	}
	e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := isa.PC(i % 3900)
		e.Flush(pc)
		e.lookup(1, pc)
	}
}

// BenchmarkPipelineDispatch measures the engine's per-instruction cost on a
// memory-heavy loop — block dispatch, the interpreter switch, the
// devirtualized page-table walk, and batched retirement accounting.
func BenchmarkPipelineDispatch(b *testing.B) {
	bld := isa.NewBuilder("pipeline")
	g := bld.GlobalU64(0)
	bld.MovImm(isa.R1, int64(g))
	bld.LoopN(isa.R2, 500, func(bld *isa.Builder) {
		bld.Store(isa.R1, 0, isa.R3)
		bld.Load(isa.R4, isa.R1, 0)
		bld.Add(isa.R3, isa.R3, isa.R2)
	})
	bld.Halt()
	prog := bld.MustFinish()

	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		p, err := guest.NewProcess(vm.NewMachine(), prog)
		if err != nil {
			b.Fatal(err)
		}
		e := New(p, nil, nil, nil, stats.DefaultCosts(), DefaultConfig())
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Counters.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// Package dbi is the dynamic binary instrumentation engine — the
// simulator's DynamoRIO (paper §2.1). It executes guest programs through a
// code cache of basic blocks:
//
//   - blocks are discovered lazily, copied into the cache, and may start at
//     any PC (so execution can resume at a faulting instruction after its
//     block was flushed and rebuilt);
//   - consecutive blocks are linked directly, and hot blocks are promoted
//     to traces, both of which reduce dispatch cost;
//   - a Tool inspects every instruction at block-build time and may attach
//     an instrumentation Plan to memory-referencing instructions;
//   - when a user access faults, the engine invokes the master signal
//     handler (§3.4); the handler may flush blocks and request a retry,
//     which rebuilds the block at the faulting PC with new instrumentation.
//
// The engine also drives the guest scheduler: threads run for a quantum of
// instructions and are switched round-robin, with blocking syscalls and
// contended locks ending quanta early.
package dbi

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/stats"
)

// Memory is the engine's user-mode data access path — the hypervisor MMU in
// Aikido runs, or a direct page-table walker in native runs.
type Memory interface {
	Load(tid guest.TID, addr uint64, size uint8, user bool) (uint64, *hypervisor.Fault)
	Store(tid guest.TID, addr uint64, size uint8, val uint64, user bool) *hypervisor.Fault
}

// Plan is the instrumentation a Tool attaches to one memory-referencing
// instruction at block-build time.
type Plan struct {
	// Gate, if non-nil, runs before anything else and may veto the access
	// for now: returning false ends the thread's quantum without retiring
	// the instruction, which re-executes when the thread is next
	// scheduled. Replay tools (the SMP-ReVirt-style CREW replayer) use it
	// to stall a thread until the logged ownership transition is its
	// turn.
	Gate func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) bool
	// PreAccess runs with the resolved effective address before the
	// access and returns the address at which the access must actually be
	// performed — the mirror address when the tool redirects (§3.3.2), or
	// addr unchanged. The tool does its own analysis work and cost
	// accounting inside this callback.
	PreAccess func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) uint64
	// PostAccess, if non-nil, runs after the access completes without
	// faulting (used by the no-mirror ablation to reprotect pages).
	PostAccess func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool)
	// NeedsExactCounts declares that the plan's callbacks read engine or
	// thread state that the interpreter batches between instructions
	// (per-thread instruction counts, cycle totals). The engine then
	// settles all pending accounting before invoking the callbacks. The
	// CREW recorder/replayer sets it (transition timestamps are
	// per-thread instruction counts); pure analysis tools don't need it.
	NeedsExactCounts bool
}

// Tool decides instrumentation at block-build time. AikidoSD (wrapping a
// shared-data analysis) and the full-instrumentation baseline both
// implement it. A nil Tool runs uninstrumented.
type Tool interface {
	// Instrument returns the plan for the instruction at pc, or nil for
	// no instrumentation.
	Instrument(pc isa.PC, in isa.Instr) *Plan
}

// FaultOutcome is the master signal handler's decision.
type FaultOutcome uint8

// Fault outcomes.
const (
	// FaultFatal kills the run (a genuine segmentation fault).
	FaultFatal FaultOutcome = iota
	// FaultRetry re-executes the faulting instruction (after the handler
	// adjusted protections and/or flushed blocks).
	FaultRetry
)

// FaultHandler is the master signal handler invoked for faulting user
// accesses (DynamoRIO's, modified per §3.4 to route Aikido faults to the
// sharing detector).
type FaultHandler func(t *guest.Thread, pc isa.PC, in isa.Instr, f *hypervisor.Fault) FaultOutcome

// Counters aggregates engine statistics.
type Counters struct {
	// Instructions retired, across all threads.
	Instructions uint64
	// MemRefs is the number of retired memory-referencing instructions —
	// column 1 of Table 2 ("Instrs. Referencing Memory").
	MemRefs uint64
	// InstrumentedExecs counts retired executions of instructions that
	// carried a Plan — column 2 of Table 2 ("Instrumented Instrs.").
	InstrumentedExecs uint64
	// BlocksBuilt / BlocksFlushed / BlockLookups / LinkedDispatches /
	// TraceDispatches describe code-cache behaviour.
	BlocksBuilt      uint64
	BlocksFlushed    uint64
	BlockLookups     uint64
	LinkedDispatches uint64
	TraceDispatches  uint64
	// Faults counts user-access faults that reached the master handler.
	Faults uint64
	// Retries counts faults resolved with FaultRetry.
	Retries uint64
	// Quanta counts scheduling quanta executed.
	Quanta uint64
}

// block is one code-cache entry.
type block struct {
	start  isa.PC
	instrs []isa.Instr
	plans  []*Plan // parallel to instrs; nil = uninstrumented
	// mem caches Op.IsMemRef per instruction: the classification is done
	// once at build time instead of on every retired execution.
	mem []bool
	end isa.PC // first PC past the block
	// next links the fall-through/jump successor once observed.
	next *block
	// execs counts executions for trace promotion; trace marks promotion.
	execs uint64
	trace bool
}

// Config parameterizes the engine.
type Config struct {
	// Quantum is the scheduling quantum in retired instructions.
	Quantum uint64
	// MaxBlock caps basic-block length in instructions.
	MaxBlock int
	// TraceThreshold promotes a block to the trace cache after this many
	// executions. 0 disables traces.
	TraceThreshold uint64
	// ChargeDBI enables code-cache cost accounting. Native baseline runs
	// keep it off so that "native time" is pure instruction cost.
	ChargeDBI bool
	// MaxSteps aborts runs exceeding this many retired instructions
	// (guards against runaway workloads); 0 means no limit.
	MaxSteps uint64
	// GateSpinLimit aborts the run after this many consecutive Gate
	// vetoes with no thread retiring an instruction — a stuck replay
	// (log/schedule mismatch) rather than progress. 0 uses the default.
	GateSpinLimit uint64
}

// defaultGateSpinLimit bounds gate-veto livelock detection.
const defaultGateSpinLimit = 1 << 20

// DefaultConfig returns the standard engine configuration.
func DefaultConfig() Config {
	return Config{
		Quantum:        1000,
		MaxBlock:       48,
		TraceThreshold: 64,
		ChargeDBI:      true,
	}
}

// Engine executes one guest process.
type Engine struct {
	P     *guest.Process
	Mem   Memory
	Tool  Tool
	Clock *stats.Clock
	Costs stats.CostModel
	Cfg   Config

	// OnFault is the master signal handler; nil treats all faults as
	// fatal.
	OnFault FaultHandler
	// RuntimeTouch, if set, is called once per code page the block
	// builder reads, modelling DynamoRIO's own accesses to (possibly
	// Aikido-protected) application pages (§3.4).
	RuntimeTouch func(tid guest.TID, addr uint64)
	// OnRetire, if set, observes every retired instruction with the
	// thread's (pre-update for sources, post-update for destinations)
	// register file — the hook register-dataflow tools (taint tracking)
	// build on. Nil costs nothing.
	OnRetire func(t *guest.Thread, pc isa.PC, in isa.Instr)
	// OnQuantum, if set, runs before every scheduling quantum; a non-nil
	// error aborts the run with that error. This is the engine's budget
	// and fault-injection seam (internal/core wires cycle/wall budget
	// checks and the chaos guest seam here): it sits on the existing
	// scheduling boundary, fires a deterministic number of times per run,
	// and costs one nil check when unset — so calibrated baselines are
	// untouched.
	OnQuantum func() error

	// blocks is the code cache as a direct PC-indexed table: slot pc
	// holds the block starting at pc (guest PCs are dense instruction
	// indices, so the table is exact — dispatch is one bounds-checked
	// load, with no hashing and no collisions). overflow catches blocks
	// starting past the static code image (never hit by well-formed
	// programs, kept for map-parity).
	blocks   []*block
	overflow map[isa.PC]*block
	nblocks  int
	// maxBlockLen is the longest block built so far; Flush only needs to
	// scan start PCs within that window below the flushed PC.
	maxBlockLen int

	// directP, when non-nil, marks Mem as the built-in direct page-table
	// walker: execMem calls it concretely instead of through the Memory
	// interface.
	directP *guest.Process

	C Counters

	prev      *block // last executed block, for linking
	gateSpins uint64 // consecutive gate vetoes with no retirement
}

// New creates an engine over a loaded process. mem may be nil, in which
// case a direct guest-page-table walker is used (native runs).
func New(p *guest.Process, mem Memory, tool Tool, clock *stats.Clock, costs stats.CostModel, cfg Config) *Engine {
	e := &Engine{
		P: p, Mem: mem, Tool: tool, Clock: clock, Costs: costs, Cfg: cfg,
		blocks: make([]*block, len(p.Prog.Code)),
	}
	if mem == nil {
		// Native runs walk the guest page table directly; keeping the
		// concrete type in directP lets execMem bypass the interface
		// call on every access.
		e.Mem = directMemory{p}
		e.directP = p
	}
	if clock == nil {
		e.Clock = &stats.Clock{}
	}
	return e
}

// directMemory walks the guest page table with no hypervisor (native mode).
type directMemory struct{ p *guest.Process }

func (d directMemory) Load(_ guest.TID, addr uint64, size uint8, _ bool) (uint64, *hypervisor.Fault) {
	pte, fault := d.p.PT.Walk(addr, pagetable.AccessRead, true)
	if fault != nil {
		return 0, &hypervisor.Fault{Addr: addr, Access: pagetable.AccessRead, Unmapped: fault.Unmapped}
	}
	return d.p.M.ReadU(pte.Frame, addr&(1<<12-1), size), nil
}

func (d directMemory) Store(_ guest.TID, addr uint64, size uint8, val uint64, _ bool) *hypervisor.Fault {
	pte, fault := d.p.PT.Walk(addr, pagetable.AccessWrite, true)
	if fault != nil {
		return &hypervisor.Fault{Addr: addr, Access: pagetable.AccessWrite, Unmapped: fault.Unmapped}
	}
	d.p.M.WriteU(pte.Frame, addr&(1<<12-1), size, val)
	return nil
}

// Flush removes every cached block containing pc. The next execution
// rebuilds them, picking up new instrumentation — the "delete all cached
// basic blocks that contain the faulting instruction and re-JIT" step of
// §3.3.2. Deleting a block also requires unlinking it: every direct link
// into a flushed block is severed, exactly as DynamoRIO unlinks deleted
// fragments (a dangling link would keep dispatching the stale,
// uninstrumented copy).
func (e *Engine) Flush(pc isa.PC) int {
	// A block containing pc starts at most maxBlockLen-1 slots below pc,
	// so only that window of the table needs scanning.
	var flushed []*block
	lo := 0
	if e.maxBlockLen > 0 && int(pc) >= e.maxBlockLen {
		lo = int(pc) - e.maxBlockLen + 1
	}
	hi := int(pc)
	if last := len(e.blocks) - 1; hi > last {
		hi = last
	}
	for start := lo; start <= hi; start++ {
		b := e.blocks[start]
		if b != nil && pc >= b.start && pc < b.end {
			e.blocks[start] = nil
			e.nblocks--
			flushed = append(flushed, b)
			if e.Cfg.ChargeDBI {
				e.Clock.Charge(e.Costs.FlushBlock)
			}
			e.C.BlocksFlushed++
		}
	}
	for start, b := range e.overflow {
		if pc >= b.start && pc < b.end {
			delete(e.overflow, start)
			e.nblocks--
			flushed = append(flushed, b)
			if e.Cfg.ChargeDBI {
				e.Clock.Charge(e.Costs.FlushBlock)
			}
			e.C.BlocksFlushed++
		}
	}
	if len(flushed) > 0 {
		// Sever every direct link into a flushed block, exactly as
		// DynamoRIO unlinks deleted fragments.
		dead := func(n *block) bool {
			for _, f := range flushed {
				if n == f {
					return true
				}
			}
			return false
		}
		for _, b := range e.blocks {
			if b != nil && b.next != nil && dead(b.next) {
				b.next = nil
			}
		}
		for _, b := range e.overflow {
			if b.next != nil && dead(b.next) {
				b.next = nil
			}
		}
	}
	e.prev = nil // the in-flight link source may be a flushed block
	return len(flushed)
}

// CacheSize returns the number of cached blocks (tests).
func (e *Engine) CacheSize() int { return e.nblocks }

// lookup fetches or builds the block starting at pc.
func (e *Engine) lookup(tid guest.TID, pc isa.PC) *block {
	if int(pc) < len(e.blocks) {
		if b := e.blocks[pc]; b != nil {
			return b
		}
	} else if b, ok := e.overflow[pc]; ok {
		return b
	}
	b := e.build(tid, pc)
	if int(pc) < len(e.blocks) {
		e.blocks[pc] = b
	} else {
		if e.overflow == nil {
			e.overflow = make(map[isa.PC]*block)
		}
		e.overflow[pc] = b
	}
	e.nblocks++
	return b
}

// build copies instructions [pc, end) into a fresh block, consulting the
// tool for instrumentation. Building reads the application's code pages,
// which may be Aikido-protected — RuntimeTouch lets the system model
// DynamoRIO's unprotect/reprotect dance (§3.4).
func (e *Engine) build(tid guest.TID, pc isa.PC) *block {
	prog := e.P.Prog
	b := &block{start: pc, end: pc}
	for len(b.instrs) < e.Cfg.MaxBlock {
		cur := pc + isa.PC(len(b.instrs))
		if int(cur) >= len(prog.Code) {
			break
		}
		in := prog.At(cur)
		b.instrs = append(b.instrs, in)
		var plan *Plan
		if e.Tool != nil {
			plan = e.Tool.Instrument(cur, in)
		}
		b.plans = append(b.plans, plan)
		b.mem = append(b.mem, in.Op.IsMemRef())
		b.end = cur + 1
		// Blocks end at control transfers and at instructions that may
		// block or switch context (syscalls, locks), as in DynamoRIO.
		if in.Op.IsBranch() || in.Op == isa.Syscall || in.Op == isa.Lock || in.Op == isa.Unlock {
			break
		}
	}
	if e.RuntimeTouch != nil {
		// One touch per code page the builder read.
		first := prog.AddrOf(b.start)
		last := prog.AddrOf(b.end - 1)
		for a := first &^ 0xfff; a <= last; a += 1 << 12 {
			e.RuntimeTouch(tid, a)
		}
	}
	if e.Cfg.ChargeDBI {
		e.Clock.Charge(e.Costs.BuildBlockBase + e.Costs.BuildPerInstr*uint64(len(b.instrs)))
	}
	if len(b.instrs) > e.maxBlockLen {
		e.maxBlockLen = len(b.instrs)
	}
	e.C.BlocksBuilt++
	return b
}

// Result summarizes a completed run.
type Result struct {
	Cycles   uint64
	ExitCode int64
	Counters Counters
	Console  string
}

// Run executes the process to completion (all threads halted or SysExit).
func (e *Engine) Run() (*Result, error) {
	p := e.P
	for p.Alive() {
		if e.Cfg.MaxSteps > 0 && e.C.Instructions > e.Cfg.MaxSteps {
			return nil, fmt.Errorf("dbi: exceeded %d instructions (runaway workload?)", e.Cfg.MaxSteps)
		}
		if e.OnQuantum != nil {
			if err := e.OnQuantum(); err != nil {
				return nil, err
			}
		}
		t := p.Current()
		if t == nil {
			if p.Deadlocked() {
				return nil, fmt.Errorf("dbi: deadlock: all live threads blocked")
			}
			return nil, fmt.Errorf("dbi: no runnable thread but process alive")
		}
		if err := e.runQuantum(t); err != nil {
			return nil, err
		}
		if p.Exited {
			break
		}
		// Rotate if the thread is still current and runnable (quantum
		// expiry); blocking/halting already rescheduled inside guest.
		if p.Current() == t && t.State == guest.Runnable {
			p.Schedule()
		}
	}
	return &Result{
		Cycles:   e.Clock.Cycles(),
		ExitCode: p.ExitCode,
		Counters: e.C,
		Console:  p.Console.String(),
	}, nil
}

// runQuantum executes t until its quantum expires, it blocks, halts, or the
// process exits.
func (e *Engine) runQuantum(t *guest.Thread) error {
	e.C.Quanta++
	budget := e.Cfg.Quantum
	for budget > 0 && t.State == guest.Runnable && !e.P.Exited {
		b := e.dispatch(t)
		done, err := e.execBlock(t, b, &budget)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return nil
}

// dispatch fetches the block at t.PC, charging the appropriate dispatch
// cost (trace < linked < lookup) and maintaining links and trace promotion.
func (e *Engine) dispatch(t *guest.Thread) *block {
	var b *block
	switch {
	case e.prev != nil && e.prev.next != nil && e.prev.next.start == t.PC:
		b = e.prev.next
		if b.trace {
			e.C.TraceDispatches++
			if e.Cfg.ChargeDBI {
				e.Clock.Charge(e.Costs.DispatchTrace)
			}
		} else {
			e.C.LinkedDispatches++
			if e.Cfg.ChargeDBI {
				e.Clock.Charge(e.Costs.DispatchLinked)
			}
		}
	default:
		b = e.lookup(t.ID, t.PC)
		e.C.BlockLookups++
		if e.Cfg.ChargeDBI {
			e.Clock.Charge(e.Costs.DispatchBlock)
		}
		if e.prev != nil && e.prev.next == nil {
			e.prev.next = b // direct-link the observed successor
		}
	}
	b.execs++
	if e.Cfg.TraceThreshold > 0 && !b.trace && b.execs >= e.Cfg.TraceThreshold {
		b.trace = true
	}
	e.prev = b
	return b
}

// execBlock runs instructions of b starting at t.PC until the block ends,
// the quantum expires, or the thread blocks/halts/faults. It returns
// done=true when the engine should end the quantum.
func (e *Engine) execBlock(t *guest.Thread, b *block, budget *uint64) (bool, error) {
	p := e.P
	idx := int(t.PC - b.start)
	// Batched accounting: straight-line runs accumulate retired-
	// instruction counts in locals and settle them in one step at every
	// exit or interposition point, instead of updating four memory
	// locations per instruction. Plans whose callbacks observe batched
	// state (Gate bookkeeping, NeedsExactCounts) force a settle first.
	bud := *budget
	var pend, pendMem uint64
	for idx < len(b.instrs) {
		if bud == 0 {
			e.settle(t, budget, bud, pend, pendMem)
			return true, nil
		}
		// Instructions are read through a pointer into the (immutable
		// after build) block body: the interpreter loop copies the
		// fields it needs, not the whole struct, per retired
		// instruction.
		in := &b.instrs[idx]
		pc := b.start + isa.PC(idx)

		// Memory-referencing instructions may fault; handle first. The
		// classification was hoisted to block-build time (b.mem).
		if b.mem[idx] {
			plan := b.plans[idx]
			if plan != nil && (plan.Gate != nil || plan.NeedsExactCounts) {
				e.settle(t, budget, bud, pend, pendMem)
				pend, pendMem = 0, 0
			}
			outcome, err := e.execMem(t, pc, in, plan)
			if err != nil {
				e.settle(t, budget, bud, pend, pendMem)
				return true, err
			}
			switch outcome {
			case memRetry:
				// Fault + retry: the handler may have flushed this
				// block; re-dispatch at the same PC.
				e.settle(t, budget, bud, pend, pendMem)
				return false, nil
			case memYield:
				// Gate veto: end the quantum without retiring; the
				// instruction re-executes when the thread is next
				// scheduled.
				t.PC = pc
				e.settle(t, budget, bud, pend, pendMem)
				return true, nil
			}
			pend++
			pendMem++
			bud--
			if e.OnRetire != nil {
				e.settle(t, budget, bud, pend, pendMem)
				pend, pendMem = 0, 0
				e.observeRetire(t, pc, in)
			}
			idx++
			t.PC = pc + 1
			continue
		}

		switch in.Op {
		case isa.Nop:
		case isa.MovImm:
			t.Regs[in.Rd] = uint64(in.Imm)
		case isa.Mov:
			t.Regs[in.Rd] = t.Regs[in.Rs]
		case isa.Add:
			t.Regs[in.Rd] = t.Regs[in.Rs] + t.Regs[in.Rt]
		case isa.AddImm:
			t.Regs[in.Rd] = t.Regs[in.Rs] + uint64(in.Imm)
		case isa.Sub:
			t.Regs[in.Rd] = t.Regs[in.Rs] - t.Regs[in.Rt]
		case isa.Mul:
			t.Regs[in.Rd] = t.Regs[in.Rs] * t.Regs[in.Rt]
		case isa.Div:
			if t.Regs[in.Rt] == 0 {
				t.Regs[in.Rd] = 0
			} else {
				t.Regs[in.Rd] = t.Regs[in.Rs] / t.Regs[in.Rt]
			}
		case isa.And:
			t.Regs[in.Rd] = t.Regs[in.Rs] & t.Regs[in.Rt]
		case isa.Or:
			t.Regs[in.Rd] = t.Regs[in.Rs] | t.Regs[in.Rt]
		case isa.Xor:
			t.Regs[in.Rd] = t.Regs[in.Rs] ^ t.Regs[in.Rt]
		case isa.Shl:
			t.Regs[in.Rd] = t.Regs[in.Rs] << (uint64(in.Imm) & 63)
		case isa.Shr:
			t.Regs[in.Rd] = t.Regs[in.Rs] >> (uint64(in.Imm) & 63)

		case isa.Jmp:
			e.settle(t, budget, bud, pend, pendMem)
			e.retireEnd(t, budget, pc, in)
			t.PC = in.Target
			return false, nil
		case isa.Br:
			e.settle(t, budget, bud, pend, pendMem)
			e.retireEnd(t, budget, pc, in)
			if in.Cond.Eval(t.Regs[in.Rs], t.Regs[in.Rt]) {
				t.PC = in.Target
			} else {
				t.PC = pc + 1
			}
			return false, nil
		case isa.BrImm:
			e.settle(t, budget, bud, pend, pendMem)
			e.retireEnd(t, budget, pc, in)
			if in.Cond.Eval(t.Regs[in.Rs], uint64(in.Imm)) {
				t.PC = in.Target
			} else {
				t.PC = pc + 1
			}
			return false, nil

		case isa.Lock:
			// PC advances only once the lock is held; a blocked thread
			// re-executes the Lock after the FIFO handoff. DoLock can
			// block the thread (context-switch hooks), so pending
			// accounting settles first.
			e.settle(t, budget, bud, pend, pendMem)
			if !p.DoLock(t, in.Imm) {
				return true, nil
			}
			e.retireEnd(t, budget, pc, in)
			t.PC = pc + 1
			return false, nil
		case isa.Unlock:
			e.settle(t, budget, bud, pend, pendMem)
			p.DoUnlock(t, in.Imm)
			e.retireEnd(t, budget, pc, in)
			t.PC = pc + 1
			return false, nil

		case isa.Syscall:
			// PC advances before the syscall: blocked threads resume
			// after it.
			e.settle(t, budget, bud, pend, pendMem)
			e.retireEnd(t, budget, pc, in)
			t.PC = pc + 1
			e.Clock.Charge(e.Costs.Syscall)
			res, err := p.DoSyscall(t, in.Imm)
			if err != nil {
				return true, fmt.Errorf("dbi: thread %d pc %d: %w", t.ID, pc, err)
			}
			switch res {
			case guest.SyscallDone:
				return false, nil
			case guest.SyscallBlocked, guest.SyscallYield, guest.SyscallExit:
				return true, nil
			}
			return false, nil

		case isa.Halt:
			e.settle(t, budget, bud, pend, pendMem)
			e.retireEnd(t, budget, pc, in)
			p.ExitThread(t)
			return true, nil

		default:
			e.settle(t, budget, bud, pend, pendMem)
			return true, fmt.Errorf("dbi: thread %d pc %d: bad opcode %v", t.ID, pc, in.Op)
		}
		pend++
		bud--
		if e.OnRetire != nil {
			e.settle(t, budget, bud, pend, pendMem)
			pend, pendMem = 0, 0
			e.observeRetire(t, pc, in)
		}
		idx++
		t.PC = pc + 1
	}
	e.settle(t, budget, bud, pend, pendMem)
	return false, nil
}

// settle writes back execBlock's batched accounting: the remaining budget
// plus pend retired instructions (pendMem of them memory references). The
// batch is equivalent to per-instruction updates because nothing between
// two settle points reads the affected state — plans that do read it
// declare NeedsExactCounts and force a settle first.
func (e *Engine) settle(t *guest.Thread, budget *uint64, bud, pend, pendMem uint64) {
	*budget = bud
	if pend == 0 {
		return
	}
	e.gateSpins = 0
	t.Instructions += pend
	e.C.Instructions += pend
	e.C.MemRefs += pendMem
	e.Clock.Charge(e.Costs.NativeInstr * pend)
}

// retire accounts one retired instruction. It is deliberately tiny so it
// inlines; the budget decrement is unconditional because every call site
// sits after the loop's budget check.
func (e *Engine) retire(t *guest.Thread, budget *uint64) {
	e.gateSpins = 0
	t.Instructions++
	e.C.Instructions++
	e.Clock.Charge(e.Costs.NativeInstr)
	*budget--
}

// observeRetire fires the OnRetire hook (taint tracking and similar
// register-dataflow tools); kept out of line because most runs have no
// observer.
//
//go:noinline
func (e *Engine) observeRetire(t *guest.Thread, pc isa.PC, in *isa.Instr) {
	e.OnRetire(t, pc, *in)
}

// retireEnd is retire plus the observer hook, for block-ending instructions
// (branches, locks, syscalls, halt) where one extra call doesn't matter.
func (e *Engine) retireEnd(t *guest.Thread, budget *uint64, pc isa.PC, in *isa.Instr) {
	e.retire(t, budget)
	if e.OnRetire != nil {
		e.observeRetire(t, pc, in)
	}
}

// memOutcome is the result of executing one memory instruction.
type memOutcome uint8

const (
	// memRetired: the access completed.
	memRetired memOutcome = iota
	// memRetry: the access faulted and the handler requested a retry.
	memRetry
	// memYield: a Gate vetoed the access; the thread's quantum ends.
	memYield
)

// execMem executes one memory-referencing instruction.
func (e *Engine) execMem(t *guest.Thread, pc isa.PC, in *isa.Instr, plan *Plan) (memOutcome, error) {
	// Classify once; the opcode predicates would otherwise be re-evaluated
	// up to four times per access.
	write := in.Op.IsWrite()
	// Effective address.
	var addr uint64
	if in.Op.IsDirect() {
		addr = uint64(in.Imm)
	} else {
		addr = t.Regs[in.Rs] + uint64(in.Imm)
	}
	if plan != nil && plan.Gate != nil && !plan.Gate(t.ID, pc, addr, in.Size, write) {
		e.gateSpins++
		limit := e.Cfg.GateSpinLimit
		if limit == 0 {
			limit = defaultGateSpinLimit
		}
		if e.gateSpins > limit {
			return memYield, fmt.Errorf(
				"dbi: thread %d pc %d: gate livelock after %d vetoes (replay log mismatch?)",
				t.ID, pc, e.gateSpins)
		}
		return memYield, nil
	}
	target := addr
	if plan != nil {
		if plan.PreAccess != nil {
			target = plan.PreAccess(t.ID, pc, addr, in.Size, write)
		}
		e.C.InstrumentedExecs++
	}

	var fault *hypervisor.Fault
	var val uint64
	if dp := e.directP; dp != nil {
		// Native path, devirtualized: page-table walk + frame access.
		if write {
			fault = directMemory{dp}.Store(t.ID, target, in.Size, t.Regs[in.Rt], true)
		} else {
			val, fault = directMemory{dp}.Load(t.ID, target, in.Size, true)
		}
	} else if write {
		fault = e.Mem.Store(t.ID, target, in.Size, t.Regs[in.Rt], true)
	} else {
		val, fault = e.Mem.Load(t.ID, target, in.Size, true)
	}
	if fault == nil {
		if !write {
			t.Regs[in.Rd] = val
		}
		if plan != nil && plan.PostAccess != nil {
			plan.PostAccess(t.ID, pc, addr, in.Size, write)
		}
		return memRetired, nil
	}

	// Fault path: master signal handler.
	e.C.Faults++
	e.Clock.Charge(e.Costs.Fault)
	if e.OnFault == nil {
		return memRetry, fmt.Errorf("dbi: thread %d pc %d: unhandled %v", t.ID, pc, fault)
	}
	switch e.OnFault(t, pc, *in, fault) {
	case FaultRetry:
		e.C.Retries++
		t.PC = pc // re-execute (block may have been flushed)
		return memRetry, nil
	default:
		return memRetry, fmt.Errorf("dbi: thread %d pc %d: fatal %v", t.ID, pc, fault)
	}
}

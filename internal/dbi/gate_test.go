package dbi

import (
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vm"
)

// gateTool vetoes the first n attempts at every memory access.
type gateTool struct {
	vetoes  int
	yielded int
}

func (g *gateTool) Instrument(pc isa.PC, in isa.Instr) *Plan {
	if !in.Op.IsMemRef() {
		return nil
	}
	return &Plan{Gate: func(tid guest.TID, pc isa.PC, addr uint64, size uint8, write bool) bool {
		if g.vetoes > 0 {
			g.vetoes--
			g.yielded++
			return false
		}
		return true
	}}
}

func gateProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("gate")
	x := b.GlobalU64(0)
	b.MovImm(isa.R4, 5)
	b.StoreAbs(x, isa.R4)
	b.LoadAbs(isa.R0, x)
	b.Syscall(isa.SysExit)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestGateYieldsThenProceeds: vetoed accesses end the quantum without
// retiring; once the gate opens the instruction executes exactly once.
func TestGateYieldsThenProceeds(t *testing.T) {
	prog := gateProgram(t)
	p, err := guest.NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	g := &gateTool{vetoes: 7}
	e := New(p, nil, g, &stats.Clock{}, stats.DefaultCosts(), DefaultConfig())
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 5 {
		t.Errorf("exit %d, want 5", res.ExitCode)
	}
	if g.yielded != 7 {
		t.Errorf("yielded %d times, want 7", g.yielded)
	}
	if res.Counters.MemRefs != 2 {
		t.Errorf("retired %d memory refs, want 2 (no double retirement)", res.Counters.MemRefs)
	}
}

// TestGateLivelockDetected: a gate that never opens aborts the run with a
// diagnostic instead of spinning forever.
func TestGateLivelockDetected(t *testing.T) {
	prog := gateProgram(t)
	p, err := guest.NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	g := &gateTool{vetoes: 1 << 30}
	cfg := DefaultConfig()
	cfg.GateSpinLimit = 500
	e := New(p, nil, g, &stats.Clock{}, stats.DefaultCosts(), cfg)
	_, err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("err = %v, want gate livelock", err)
	}
}

// TestGateSpinResetOnProgress: interleaved vetoes and successes never trip
// the livelock detector as long as someone retires instructions.
func TestGateSpinResetOnProgress(t *testing.T) {
	b := isa.NewBuilder("gatespin")
	x := b.GlobalU64(0)
	b.LoopN(isa.R2, 50, func(b *isa.Builder) {
		b.LoadAbs(isa.R4, x)
		b.AddImm(isa.R4, isa.R4, 1)
		b.StoreAbs(x, isa.R4)
	})
	b.LoadAbs(isa.R0, x)
	b.Syscall(isa.SysExit)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := guest.NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	// Veto every third attempt, forever.
	n := 0
	tool := planFunc(func(pc isa.PC, in isa.Instr) *Plan {
		if !in.Op.IsMemRef() {
			return nil
		}
		return &Plan{Gate: func(guest.TID, isa.PC, uint64, uint8, bool) bool {
			n++
			return n%3 != 0
		}}
	})
	cfg := DefaultConfig()
	cfg.GateSpinLimit = 10 // tight: only consecutive vetoes may trip it
	e := New(p, nil, tool, &stats.Clock{}, stats.DefaultCosts(), cfg)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 50 {
		t.Errorf("exit %d, want 50", res.ExitCode)
	}
}

// planFunc adapts a function to the Tool interface.
type planFunc func(pc isa.PC, in isa.Instr) *Plan

func (f planFunc) Instrument(pc isa.PC, in isa.Instr) *Plan { return f(pc, in) }

package guest

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// dfsProgram: main writes 1 to x, spawns a child that writes 2, and
// immediately after the spawn reads x into the exit code. Under
// SchedSerialDFS the child runs to completion first (exit 2); under
// round-robin with a large quantum the parent's read precedes the child
// (exit 1).
func dfsProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("dfs")
	x := b.GlobalU64(0)
	b.MovImm(isa.R4, 1)
	b.StoreAbs(x, isa.R4)
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("child", isa.R5)
	b.LoadAbs(isa.R0, x) // read immediately after spawn
	b.Syscall(isa.SysExit)
	b.Label("child")
	b.MovImm(isa.R4, 2)
	b.StoreAbs(x, isa.R4)
	b.Halt()
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runPolicy executes a program under the given policy with a minimal
// interpreter (no DBI engine, to keep the test within this package).
func runPolicy(t *testing.T, prog *isa.Program, policy SchedPolicy) int64 {
	t.Helper()
	p, err := NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	p.Policy = policy
	steps := 0
	for p.Alive() && !p.Exited {
		t0 := p.Current()
		if t0 == nil {
			t.Fatal("no runnable thread")
		}
		if steps++; steps > 100000 {
			t.Fatal("runaway")
		}
		in := prog.At(t0.PC)
		pc := t0.PC
		switch in.Op {
		case isa.MovImm:
			t0.Regs[in.Rd] = uint64(in.Imm)
			t0.PC = pc + 1
		case isa.Mov:
			t0.Regs[in.Rd] = t0.Regs[in.Rs]
			t0.PC = pc + 1
		case isa.StoreAbs:
			pte, _ := p.PT.Walk(uint64(in.Imm), pagetable.AccessWrite, true)
			p.M.WriteU(pte.Frame, vm.PageOff(uint64(in.Imm)), 8, t0.Regs[in.Rt])
			t0.PC = pc + 1
		case isa.LoadAbs:
			pte, _ := p.PT.Walk(uint64(in.Imm), pagetable.AccessRead, true)
			t0.Regs[in.Rd] = p.M.ReadU(pte.Frame, vm.PageOff(uint64(in.Imm)), 8)
			t0.PC = pc + 1
		case isa.Syscall:
			t0.PC = pc + 1
			if _, err := p.DoSyscall(t0, in.Imm); err != nil {
				t.Fatal(err)
			}
		case isa.Halt:
			p.ExitThread(t0)
		default:
			t.Fatalf("unexpected op %v", in.Op)
		}
	}
	return p.ExitCode
}

func TestSerialDFSChildRunsFirst(t *testing.T) {
	if got := runPolicy(t, dfsProgram(t), SchedSerialDFS); got != 2 {
		t.Errorf("DFS exit = %d, want 2 (child completes at spawn)", got)
	}
	if got := runPolicy(t, dfsProgram(t), SchedRoundRobin); got != 1 {
		t.Errorf("round-robin exit = %d, want 1 (parent continues)", got)
	}
}

// TestSerialDFSNested: grandchildren complete before the middle task
// resumes, recursively.
func TestSerialDFSNested(t *testing.T) {
	b := isa.NewBuilder("dfs-nested")
	x := b.GlobalU64(0)
	// main spawns child; child spawns grandchild; grandchild writes 7;
	// child reads (must see 7), adds 1, writes back; main reads (must see
	// 8) into exit code.
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("child", isa.R5)
	b.LoadAbs(isa.R0, x)
	b.Syscall(isa.SysExit)

	b.Label("child")
	b.MovImm(isa.R5, 0)
	b.ThreadCreate("grandchild", isa.R5)
	b.LoadAbs(isa.R4, x)
	b.AddImm(isa.R4, isa.R4, 1)
	b.StoreAbs(x, isa.R4)
	b.Halt()

	b.Label("grandchild")
	b.MovImm(isa.R4, 7)
	b.StoreAbs(x, isa.R4)
	b.Halt()

	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Extend the mini-interpreter ops: AddImm.
	p, err := NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	p.Policy = SchedSerialDFS
	steps := 0
	for p.Alive() && !p.Exited {
		t0 := p.Current()
		if steps++; steps > 100000 {
			t.Fatal("runaway")
		}
		in := prog.At(t0.PC)
		pc := t0.PC
		switch in.Op {
		case isa.MovImm:
			t0.Regs[in.Rd] = uint64(in.Imm)
			t0.PC = pc + 1
		case isa.Mov:
			t0.Regs[in.Rd] = t0.Regs[in.Rs]
			t0.PC = pc + 1
		case isa.AddImm:
			t0.Regs[in.Rd] = t0.Regs[in.Rs] + uint64(in.Imm)
			t0.PC = pc + 1
		case isa.StoreAbs:
			pte, _ := p.PT.Walk(uint64(in.Imm), pagetable.AccessWrite, true)
			p.M.WriteU(pte.Frame, vm.PageOff(uint64(in.Imm)), 8, t0.Regs[in.Rt])
			t0.PC = pc + 1
		case isa.LoadAbs:
			pte, _ := p.PT.Walk(uint64(in.Imm), pagetable.AccessRead, true)
			t0.Regs[in.Rd] = p.M.ReadU(pte.Frame, vm.PageOff(uint64(in.Imm)), 8)
			t0.PC = pc + 1
		case isa.Syscall:
			t0.PC = pc + 1
			if _, err := p.DoSyscall(t0, in.Imm); err != nil {
				t.Fatal(err)
			}
		case isa.Halt:
			p.ExitThread(t0)
		default:
			t.Fatalf("unexpected op %v", in.Op)
		}
	}
	if p.ExitCode != 8 {
		t.Errorf("exit = %d, want 8 (grandchild 7, child +1, DFS order)", p.ExitCode)
	}
}

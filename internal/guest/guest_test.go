package guest

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

func tinyProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("tiny")
	b.GlobalU64(0x42)
	b.Nop().Halt()
	return b.MustFinish()
}

func newProc(t *testing.T, prog *isa.Program) *Process {
	t.Helper()
	p, err := NewProcess(vm.NewMachine(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoaderLayout(t *testing.T) {
	p := newProc(t, tinyProgram(t))

	code := p.FindVMA(isa.CodeBase)
	if code == nil || code.Kind != VMACode {
		t.Fatal("code VMA missing")
	}
	if code.Prot != pagetable.ProtRO {
		t.Errorf("code prot = %v, want RO", code.Prot)
	}
	data := p.FindVMA(isa.DataBase)
	if data == nil || data.Kind != VMAData {
		t.Fatal("data VMA missing")
	}
	// Data image present: the global we wrote must be readable.
	pte, fault := p.PT.Walk(isa.DataBase, pagetable.AccessRead, true)
	if fault != nil {
		t.Fatal(fault)
	}
	if v := p.M.ReadU(pte.Frame, 0, 8); v != 0x42 {
		t.Errorf("data image = %#x, want 0x42", v)
	}

	main := p.Current()
	if main == nil || main.ID != 1 {
		t.Fatal("main thread not current")
	}
	if main.Stack == nil || main.Regs[isa.SP] != main.Stack.End()-8 {
		t.Error("stack pointer not initialized")
	}
}

func TestMmapMunmap(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	framesBefore := p.M.Frames()

	base := p.Mmap(3*vm.PageSize+1, pagetable.ProtRW)
	v := p.FindVMA(base)
	if v == nil || v.Pages != 4 {
		t.Fatalf("mmap VMA = %v, want 4 pages", v)
	}
	// Mapped and accessible.
	if _, fault := p.PT.Walk(base+2*vm.PageSize, pagetable.AccessWrite, true); fault != nil {
		t.Fatal(fault)
	}
	if err := p.Munmap(base); err != nil {
		t.Fatal(err)
	}
	if p.FindVMA(base) != nil {
		t.Error("VMA survives munmap")
	}
	if p.M.Frames() != framesBefore {
		t.Errorf("frames leaked: %d -> %d", framesBefore, p.M.Frames())
	}
	if err := p.Munmap(base); err == nil {
		t.Error("double munmap succeeded")
	}
}

func TestBrkGrowth(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	if got := p.GrowBrk(0); got != isa.HeapBase {
		t.Errorf("initial brk = %#x, want %#x", got, isa.HeapBase)
	}
	nb := p.GrowBrk(isa.HeapBase + 5000)
	if nb != isa.HeapBase+2*vm.PageSize {
		t.Errorf("brk = %#x, want %#x", nb, isa.HeapBase+2*vm.PageSize)
	}
	// Heap pages mapped RW.
	if _, fault := p.PT.Walk(isa.HeapBase+vm.PageSize, pagetable.AccessWrite, true); fault != nil {
		t.Fatal(fault)
	}
	// Shrink is a no-op.
	if got := p.GrowBrk(isa.HeapBase); got != nb {
		t.Errorf("shrink changed brk to %#x", got)
	}
}

func TestMapAliasSharesFrames(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	base := p.Mmap(vm.PageSize, pagetable.ProtRW)
	orig := p.FindVMA(base)

	mirror := p.MapAlias(orig, 0x5000_0000_0000, pagetable.ProtRW, VMAMirror, "mirror")
	if mirror.Backing != orig.Backing {
		t.Fatal("alias has its own backing")
	}
	// A write through one mapping is visible through the other.
	pte1, _ := p.PT.Walk(base, pagetable.AccessWrite, true)
	p.M.WriteU(pte1.Frame, 8, 8, 0xabc)
	pte2, _ := p.PT.Walk(mirror.Base, pagetable.AccessRead, true)
	if v := p.M.ReadU(pte2.Frame, 8, 8); v != 0xabc {
		t.Errorf("mirror read = %#x, want 0xabc", v)
	}
	// Unmapping the original must not free shared frames.
	if err := p.Munmap(base); err != nil {
		t.Fatal(err)
	}
	pte2, fault := p.PT.Walk(mirror.Base, pagetable.AccessRead, true)
	if fault != nil {
		t.Fatalf("mirror unusable after original unmapped: %v", fault)
	}
	if v := p.M.ReadU(pte2.Frame, 8, 8); v != 0xabc {
		t.Error("mirror lost data after original unmapped")
	}
}

func TestVMAListenerReplayAndEvents(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	var added, removed []string
	p.AddVMAListener(funcListener{
		add: func(v *VMA) { added = append(added, v.Name) },
		rm:  func(v *VMA) { removed = append(removed, v.Name) },
	})
	// Replay must include text, data and stack1.
	want := map[string]bool{"text": false, "data": false, "stack1": false}
	for _, n := range added {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("listener replay missed %s", n)
		}
	}
	base := p.Mmap(vm.PageSize, pagetable.ProtRW)
	if added[len(added)-1] == "" {
		t.Error("mmap VMA not announced")
	}
	p.Munmap(base)
	if len(removed) != 1 {
		t.Errorf("removed events = %v", removed)
	}
}

type funcListener struct {
	add, rm func(*VMA)
}

func (f funcListener) VMAAdded(v *VMA)   { f.add(v) }
func (f funcListener) VMARemoved(v *VMA) { f.rm(v) }

func TestSchedulerRoundRobin(t *testing.T) {
	b := isa.NewBuilder("sched")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())

	t2 := p.newThread(0, 0, 1)
	t3 := p.newThread(0, 0, 1)

	// Current is main (1). Rotation: 1 -> 2 -> 3 -> 1 ...
	order := []TID{}
	for i := 0; i < 6; i++ {
		cur := p.Schedule()
		order = append(order, cur.ID)
	}
	want := []TID{2, 3, 1, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("schedule order %v, want %v", order, want)
		}
	}
	if p.ContextSwitches == 0 {
		t.Error("context switches not counted")
	}
	_ = t2
	_ = t3
}

func TestContextSwitchHookFires(t *testing.T) {
	b := isa.NewBuilder("hook")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())
	var pairs [][2]TID
	p.Hooks.ContextSwitch = func(old, new TID) { pairs = append(pairs, [2]TID{old, new}) }
	p.newThread(0, 0, 1)
	p.Schedule()
	if len(pairs) != 1 || pairs[0] != [2]TID{1, 2} {
		t.Errorf("context switch hook pairs = %v", pairs)
	}
	// Scheduling the same single runnable thread must not fire the hook.
	p.threads[1].State = Done
	pairs = nil
	p.Schedule() // only thread 2 runnable; stays current
	for _, pr := range pairs {
		if pr[0] == pr[1] {
			t.Error("self-switch reported")
		}
	}
}

func TestLockContentionAndHandoff(t *testing.T) {
	b := isa.NewBuilder("locks")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())
	main := p.Current()
	t2 := p.newThread(0, 0, 1)

	var acquired, released []TID
	p.Hooks.LockAcquired = func(th *Thread, id int64) { acquired = append(acquired, th.ID) }
	p.Hooks.LockReleased = func(th *Thread, id int64) { released = append(released, th.ID) }

	if !p.DoLock(main, 7) {
		t.Fatal("uncontended lock blocked")
	}
	if p.DoLock(t2, 7) {
		t.Fatal("contended lock acquired")
	}
	if t2.State != Blocked {
		t.Error("contender not blocked")
	}
	if p.LockContentions != 1 {
		t.Error("contention not counted")
	}
	p.DoUnlock(main, 7)
	if p.LockHolder(7) != t2.ID {
		t.Error("FIFO handoff failed")
	}
	if t2.State != Runnable {
		t.Error("contender not woken")
	}
	// Re-execution of the Lock instruction completes the acquire.
	if !p.DoLock(t2, 7) {
		t.Error("handed-off lock did not acquire on re-execution")
	}
	if len(acquired) != 2 || len(released) != 1 {
		t.Errorf("hook counts: acquired=%v released=%v", acquired, released)
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld lock did not panic")
		}
	}()
	p.DoUnlock(p.Current(), 99)
}

func TestThreadCreateJoinSyscalls(t *testing.T) {
	b := isa.NewBuilder("tj")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())
	main := p.Current()

	// thread_create
	main.Regs[isa.R0] = 0 // entry PC
	main.Regs[isa.R1] = 77
	res, err := p.DoSyscall(main, isa.SysThreadCreate)
	if err != nil || res != SyscallDone {
		t.Fatalf("thread_create: %v %v", res, err)
	}
	child := p.Thread(TID(main.Regs[isa.R0]))
	if child == nil || child.Regs[isa.R0] != 77 {
		t.Fatal("child arg not passed")
	}

	// join on a live thread blocks...
	main.Regs[isa.R0] = uint64(child.ID)
	res, err = p.DoSyscall(main, isa.SysThreadJoin)
	if err != nil || res != SyscallBlocked {
		t.Fatalf("join: %v %v", res, err)
	}
	if main.State != Blocked {
		t.Error("joiner not blocked")
	}
	// ... and the child's exit wakes it.
	p.ExitThread(child)
	if main.State != Runnable {
		t.Error("joiner not woken by exit")
	}

	// join on a finished thread returns immediately.
	main.Regs[isa.R0] = uint64(child.ID)
	res, _ = p.DoSyscall(main, isa.SysThreadJoin)
	if res != SyscallDone {
		t.Error("join of done thread blocked")
	}
}

func TestBarrier(t *testing.T) {
	b := isa.NewBuilder("bar")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())
	main := p.Current()
	t2 := p.newThread(0, 0, 1)
	t3 := p.newThread(0, 0, 1)

	arrive := func(th *Thread) SyscallResult {
		th.Regs[isa.R0] = 5 // barrier id
		th.Regs[isa.R1] = 3 // parties
		res, err := p.DoSyscall(th, isa.SysBarrier)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := arrive(main); res != SyscallBlocked {
		t.Fatalf("first arrival: %v", res)
	}
	if res := arrive(t2); res != SyscallBlocked {
		t.Fatalf("second arrival: %v", res)
	}
	if res := arrive(t3); res != SyscallYield {
		t.Fatalf("last arrival: %v", res)
	}
	if main.State != Runnable || t2.State != Runnable {
		t.Error("barrier did not release waiters")
	}
	// Reusable: a second round works.
	if res := arrive(main); res != SyscallBlocked {
		t.Error("barrier not reusable")
	}
}

func TestWriteSyscallAndConsole(t *testing.T) {
	b := isa.NewBuilder("hello")
	msg := b.Global(5, 1)
	copy(b.Data()[msg-isa.DataBase:], "hello")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())
	main := p.Current()
	main.Regs[isa.R0] = msg
	main.Regs[isa.R1] = 5
	if _, err := p.DoSyscall(main, isa.SysWrite); err != nil {
		t.Fatal(err)
	}
	if got := p.Console.String(); got != "hello" {
		t.Errorf("console = %q, want hello", got)
	}
	if main.Regs[isa.R0] != 5 {
		t.Error("write did not return length")
	}
}

func TestExitSyscall(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = 3
	res, _ := p.DoSyscall(main, isa.SysExit)
	if res != SyscallExit || !p.Exited || p.ExitCode != 3 {
		t.Errorf("exit: res=%v exited=%v code=%d", res, p.Exited, p.ExitCode)
	}
	if p.Alive() {
		t.Error("process alive after exit")
	}
}

func TestDeadlockDetection(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	t2 := p.newThread(0, 0, 1)
	p.DoLock(main, 1)
	p.DoLock(t2, 2)
	// Cross-acquire: both block.
	p.DoLock(main, 2)
	p.DoLock(t2, 1)
	if !p.Deadlocked() {
		t.Error("deadlock not detected")
	}
}

func TestMultiThreadStacksAreDistinctPages(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	t2 := p.newThread(0, 0, 1)
	main := p.Current()
	if vm.PageNum(main.Stack.Base) == vm.PageNum(t2.Stack.Base) {
		t.Error("thread stacks share a page")
	}
}

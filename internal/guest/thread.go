package guest

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// ThreadState is a thread's scheduler state.
type ThreadState uint8

// Thread states.
const (
	// Runnable threads are on the run queue (or currently executing).
	Runnable ThreadState = iota
	// Blocked threads wait on a lock, join or barrier.
	Blocked
	// Done threads have halted.
	Done
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	}
	return "state?"
}

// Thread is one guest thread. Register state lives here; the DBI engine
// mutates it while the thread executes.
type Thread struct {
	ID    TID
	State ThreadState
	Regs  [isa.NumRegs]uint64
	PC    isa.PC

	// Stack is the thread's private stack VMA.
	Stack *VMA

	// joinWaiters are threads blocked in SysThreadJoin on this thread.
	joinWaiters []TID
	// resumeOnExit is the thread blocked at this thread's spawn point
	// under SchedSerialDFS (spawn runs the child to completion, like a
	// call); NoTID otherwise.
	resumeOnExit TID

	// Instructions counts retired instructions (for stats).
	Instructions uint64
}

// String identifies the thread.
func (t *Thread) String() string { return fmt.Sprintf("thread %d (%s)", t.ID, t.State) }

// newThread allocates a TID and a private stack, initializes registers and
// enqueues the thread.
func (p *Process) newThread(entry isa.PC, arg uint64, creator TID) *Thread {
	id := p.nextTID
	p.nextTID++
	stackBase := isa.StackBase + uint64(id-1)*isa.StackStride
	stack := p.addOwnedVMA(stackBase, int(isa.StackSize/vm.PageSize), pagetable.ProtRW,
		VMAStack, fmt.Sprintf("stack%d", id), id)
	t := &Thread{ID: id, State: Runnable, PC: entry, Stack: stack}
	t.Regs[isa.R0] = arg
	t.Regs[isa.TP] = stack.Base
	t.Regs[isa.SP] = stack.End() - 8
	p.threads[id] = t
	p.runq = append(p.runq, id)
	if p.Hooks.ThreadStarted != nil {
		p.Hooks.ThreadStarted(t, creator)
	}
	return t
}

// Thread returns the thread with the given id, or nil.
func (p *Process) Thread(id TID) *Thread { return p.threads[id] }

// Threads returns all thread ids in creation order.
func (p *Process) Threads() []TID {
	out := make([]TID, 0, len(p.threads))
	for id := TID(1); id < p.nextTID; id++ {
		if _, ok := p.threads[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Current returns the currently scheduled thread, or nil when the process
// has no runnable work.
func (p *Process) Current() *Thread {
	if p.current == NoTID {
		return nil
	}
	return p.threads[p.current]
}

// Alive reports whether any thread can still make progress.
func (p *Process) Alive() bool {
	if p.Exited {
		return false
	}
	for _, t := range p.threads {
		if t.State != Done {
			return true
		}
	}
	return false
}

// Deadlocked reports whether live threads exist but none are runnable.
func (p *Process) Deadlocked() bool {
	if !p.Alive() {
		return false
	}
	for _, t := range p.threads {
		if t.State == Runnable {
			return false
		}
	}
	return true
}

// Schedule picks the next runnable thread (FIFO round-robin) and makes it
// current, firing the ContextSwitch hook on a change. It returns the newly
// current thread, or nil if nothing is runnable.
func (p *Process) Schedule() *Thread {
	old := p.current
	// Rotate the current thread (if still runnable) to the back.
	if cur, ok := p.threads[old]; ok && cur.State == Runnable {
		p.runq = append(p.runq, old)
	}
	next := NoTID
	for len(p.runq) > 0 {
		cand := p.runq[0]
		p.runq = p.runq[1:]
		if t, ok := p.threads[cand]; ok && t.State == Runnable {
			next = cand
			break
		}
	}
	p.current = next
	if next == NoTID {
		return nil
	}
	if next != old {
		p.ContextSwitches++
		if p.Hooks.ContextSwitch != nil {
			p.Hooks.ContextSwitch(old, next)
		}
	}
	return p.threads[next]
}

// block marks the current thread blocked and schedules another. The caller
// must have queued the thread on some wait list.
func (p *Process) block(t *Thread) {
	t.State = Blocked
	p.Schedule()
}

// wake makes a blocked thread runnable again.
func (p *Process) wake(id TID) {
	t, ok := p.threads[id]
	if !ok || t.State != Blocked {
		panic(fmt.Sprintf("guest: wake of %v in state %v", id, t.State))
	}
	t.State = Runnable
	p.runq = append(p.runq, id)
	// If nothing was current (everyone was blocked), schedule immediately.
	if p.current == NoTID {
		p.Schedule()
	}
}

// ExitThread halts t, wakes joiners, and reschedules if t was current.
func (p *Process) ExitThread(t *Thread) {
	t.State = Done
	if p.Hooks.ThreadExited != nil {
		p.Hooks.ThreadExited(t)
	}
	if t.resumeOnExit != NoTID {
		// Serial-DFS spawn return: the parent resumes at the point after
		// the spawn (no happens-before join edge yet — only the explicit
		// join makes one).
		p.wake(t.resumeOnExit)
		t.resumeOnExit = NoTID
	}
	for _, w := range t.joinWaiters {
		p.wake(w)
		if p.Hooks.ThreadJoined != nil {
			p.Hooks.ThreadJoined(w, t)
		}
	}
	t.joinWaiters = nil
	if p.current == t.ID {
		p.Schedule()
	}
}

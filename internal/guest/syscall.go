package guest

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// lockState is a futex-style mutex with FIFO handoff (deterministic).
type lockState struct {
	holder  TID
	waiters []TID
}

// barrierState tracks arrivals at one barrier id.
type barrierState struct {
	arrived []TID
}

// DoLock executes a Lock instruction for t. It returns true if the lock was
// acquired and execution continues, false if t blocked (the executor must
// not advance t's PC past the Lock until it holds the lock; blocking
// re-executes the instruction after wakeup, at which point the FIFO handoff
// has already assigned ownership).
func (p *Process) DoLock(t *Thread, id int64) bool {
	l := p.locks[id]
	if l == nil {
		l = &lockState{}
		p.locks[id] = l
	}
	switch l.holder {
	case NoTID:
		l.holder = t.ID
		if p.Hooks.LockAcquired != nil {
			p.Hooks.LockAcquired(t, id)
		}
		return true
	case t.ID:
		// Re-execution after a FIFO handoff: the unlocker already made
		// this thread the holder.
		if p.Hooks.LockAcquired != nil {
			p.Hooks.LockAcquired(t, id)
		}
		return true
	default:
		p.LockContentions++
		l.waiters = append(l.waiters, t.ID)
		p.block(t)
		return false
	}
}

// DoUnlock executes an Unlock instruction. Unlocking a lock the thread does
// not hold is a guest program bug and panics (the workload generators are
// trusted; real kernels return EPERM).
func (p *Process) DoUnlock(t *Thread, id int64) {
	l := p.locks[id]
	if l == nil || l.holder != t.ID {
		panic(fmt.Sprintf("guest: thread %d unlocks lock %d it does not hold", t.ID, id))
	}
	if p.Hooks.LockReleased != nil {
		p.Hooks.LockReleased(t, id)
	}
	if len(l.waiters) > 0 {
		next := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.holder = next // direct handoff keeps the order deterministic
		p.wake(next)
	} else {
		l.holder = NoTID
	}
}

// LockHolder reports the current holder of a lock (NoTID if free or
// unknown). For tests.
func (p *Process) LockHolder(id int64) TID {
	if l := p.locks[id]; l != nil {
		return l.holder
	}
	return NoTID
}

// SyscallResult tells the executor what happened to the calling thread.
type SyscallResult uint8

// Syscall results.
const (
	// SyscallDone: the syscall completed; advance PC and continue.
	SyscallDone SyscallResult = iota
	// SyscallBlocked: the thread blocked and another was scheduled. The
	// executor advances PC *before* invoking DoSyscall, so the thread
	// resumes after the syscall when woken (no restart).
	SyscallBlocked
	// SyscallYield: the syscall completed but the thread's quantum ends.
	SyscallYield
	// SyscallExit: the whole process exited.
	SyscallExit
)

// DoSyscall executes syscall num for t with the guest ABI (args R0..R3,
// result in R0).
func (p *Process) DoSyscall(t *Thread, num int64) (SyscallResult, error) {
	p.SyscallCount++
	if p.Hooks.Syscall != nil {
		p.Hooks.Syscall(t, num)
	}
	switch num {
	case isa.SysExit:
		p.Exited = true
		p.ExitCode = int64(t.Regs[isa.R0])
		return SyscallExit, nil

	case isa.SysWrite:
		addr := t.Regs[isa.R0]
		n := int(t.Regs[isa.R1])
		if n < 0 || n > 1<<20 {
			return SyscallDone, fmt.Errorf("guest: write of unreasonable length %d", n)
		}
		// The kernel dereferences the user buffer: this is the path that
		// faults on Aikido-protected pages and gets emulated (§3.2.6).
		buf, fault := p.KernelReadBytes(t.ID, addr, n)
		if fault != nil {
			return SyscallDone, fmt.Errorf("guest: write syscall faulted: %w", fault)
		}
		p.Console.Write(buf)
		t.Regs[isa.R0] = uint64(n)
		return SyscallDone, nil

	case isa.SysMmap:
		length := t.Regs[isa.R0]
		prot := pagetable.Prot(t.Regs[isa.R1])
		if prot == 0 {
			prot = pagetable.ProtRW
		}
		base := p.Mmap(length, prot)
		t.Regs[isa.R0] = base
		return SyscallDone, nil

	case isa.SysMunmap:
		addr := t.Regs[isa.R0]
		if err := p.Munmap(addr); err != nil {
			return SyscallDone, err
		}
		t.Regs[isa.R0] = 0
		return SyscallDone, nil

	case isa.SysBrk:
		want := t.Regs[isa.R0]
		t.Regs[isa.R0] = p.GrowBrk(want)
		return SyscallDone, nil

	case isa.SysThreadCreate:
		entry := isa.PC(t.Regs[isa.R0])
		if int(entry) >= len(p.Prog.Code) {
			return SyscallDone, fmt.Errorf("guest: thread_create entry %d out of range", entry)
		}
		nt := p.newThread(entry, t.Regs[isa.R1], t.ID)
		t.Regs[isa.R0] = uint64(nt.ID)
		if p.Policy == SchedSerialDFS {
			// Depth-first serial execution: the child runs to completion
			// before the creator resumes (spawn behaves like a call).
			// Put the child at the head of the queue and park the
			// creator until the child exits.
			for i, id := range p.runq {
				if id == nt.ID {
					copy(p.runq[1:i+1], p.runq[:i])
					p.runq[0] = nt.ID
					break
				}
			}
			nt.resumeOnExit = t.ID
			p.block(t)
			return SyscallBlocked, nil
		}
		return SyscallDone, nil

	case isa.SysThreadJoin:
		target := TID(t.Regs[isa.R0])
		tt, ok := p.threads[target]
		if !ok {
			return SyscallDone, fmt.Errorf("guest: join of unknown thread %d", target)
		}
		if tt.State == Done {
			t.Regs[isa.R0] = 0
			if p.Hooks.ThreadJoined != nil {
				p.Hooks.ThreadJoined(t.ID, tt)
			}
			return SyscallDone, nil
		}
		// Block until the target exits; the wakeup resumes after the
		// syscall instruction.
		tt.joinWaiters = append(tt.joinWaiters, t.ID)
		p.block(t)
		return SyscallBlocked, nil

	case isa.SysBarrier:
		id := int64(t.Regs[isa.R0])
		n := int(t.Regs[isa.R1])
		b := p.barriers[id]
		if b == nil {
			b = &barrierState{}
			p.barriers[id] = b
		}
		// Barriers are reusable: the arrival list is cleared on each
		// release. A double arrival without a release in between means
		// the executor resumed a blocked thread at the wrong PC.
		for _, a := range b.arrived {
			if a == t.ID {
				panic(fmt.Sprintf("guest: thread %d re-arrives at barrier %d", t.ID, id))
			}
		}
		if p.Hooks.BarrierWait != nil {
			p.Hooks.BarrierWait(t, id)
		}
		b.arrived = append(b.arrived, t.ID)
		if len(b.arrived) >= n {
			// Last arrival: release everyone.
			for _, a := range b.arrived {
				if a != t.ID {
					p.wake(a)
				}
				if p.Hooks.BarrierRelease != nil {
					p.Hooks.BarrierRelease(p.threads[a], id)
				}
			}
			b.arrived = nil
			return SyscallYield, nil
		}
		p.blockAtBarrier(t)
		return SyscallBlocked, nil

	case isa.SysYield:
		return SyscallYield, nil

	case isa.SysTxBegin:
		if p.Hooks.TxBegin != nil {
			t.Regs[isa.R0] = uint64(p.Hooks.TxBegin(t))
		} else {
			t.Regs[isa.R0] = 1
		}
		return SyscallDone, nil

	case isa.SysTxEnd:
		if p.Hooks.TxEnd != nil {
			t.Regs[isa.R0] = uint64(p.Hooks.TxEnd(t))
		} else {
			t.Regs[isa.R0] = 1
		}
		return SyscallDone, nil
	}
	return SyscallDone, fmt.Errorf("guest: unknown syscall %d", num)
}

// blockAtBarrier blocks t until the barrier's last arrival wakes it.
func (p *Process) blockAtBarrier(t *Thread) {
	t.State = Blocked
	p.Schedule()
}

// Mmap maps length bytes (rounded up to pages) of fresh anonymous memory
// and returns the base address.
func (p *Process) Mmap(length uint64, prot pagetable.Prot) uint64 {
	pages := int(vm.RoundUp(max64(length, 1)) / vm.PageSize)
	base := p.mmapNext
	// Leave a one-page guard gap between mappings so regions never abut
	// (keeps Umbra regions distinct).
	p.mmapNext += uint64(pages+1) * vm.PageSize
	p.addVMA(base, pages, prot, VMAMmap, fmt.Sprintf("mmap@%#x", base))
	return base
}

// Munmap removes the mapping whose base address is addr.
func (p *Process) Munmap(addr uint64) error {
	for _, v := range p.vmas {
		if v.Base == addr && (v.Kind == VMAMmap || v.Kind == VMAMirror) {
			p.removeVMA(v)
			return nil
		}
	}
	return fmt.Errorf("guest: munmap of unknown mapping %#x", addr)
}

// GrowBrk implements brk: want==0 queries; otherwise the break grows to
// want (shrinking is ignored, like early Unix). Each growth adds a new heap
// VMA chunk, which keeps VMA-granular listeners (mirroring, Umbra) simple —
// this mirrors AikidoSD's emulation of brk with mmapped files (§3.3.3).
func (p *Process) GrowBrk(want uint64) uint64 {
	if want <= p.brk {
		return p.brk
	}
	newBrk := isa.HeapBase + vm.RoundUp(want-isa.HeapBase)
	pages := int((newBrk - p.brk) / vm.PageSize)
	p.addVMA(p.brk, pages, pagetable.ProtRW, VMAHeap,
		fmt.Sprintf("heap@%#x", p.brk))
	p.brk = newBrk
	return p.brk
}

// Package guest models the guest operating system that runs inside
// AikidoVM: one process with many threads sharing a page table, a
// deterministic scheduler, and the syscalls the PARSEC-style workloads need
// (mmap/brk, futex locks, barriers, thread create/join, console write).
//
// The guest is deliberately small but structurally faithful to the parts of
// Linux that Aikido interposes on:
//
//   - all threads share one page table (so per-thread protection is
//     impossible without the hypervisor — the paper's motivating problem);
//   - every memory segment is backed by a Backing object (the analogue of
//     the backing files AikidoSD creates so it can map a segment twice);
//   - context switches between threads of one process do not change the
//     page table, so the hypervisor must be told about them explicitly
//     (the Hooks.ContextSwitch notification models the FS/GS-write VM exit
//     of paper §3.2.3);
//   - the kernel dereferences user pointers (SysWrite), triggering the
//     guest-OS fault emulation path of §3.2.6.
package guest

import (
	"bytes"
	"fmt"

	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// TID identifies a guest thread. The main thread is TID 1.
type TID int32

// NoTID is the invalid thread id.
const NoTID TID = 0

// VMAKind classifies a virtual memory area.
type VMAKind uint8

// VMA kinds.
const (
	VMACode VMAKind = iota
	VMAData
	VMAHeap
	VMAStack
	VMAMmap
	// VMAShadow marks regions allocated by the analysis runtime (Umbra
	// shadow memory). They are never page-protected by AikidoSD.
	VMAShadow
	// VMAMirror marks mirror regions aliasing another VMA's backing.
	VMAMirror
)

// String returns the kind name.
func (k VMAKind) String() string {
	switch k {
	case VMACode:
		return "code"
	case VMAData:
		return "data"
	case VMAHeap:
		return "heap"
	case VMAStack:
		return "stack"
	case VMAMmap:
		return "mmap"
	case VMAShadow:
		return "shadow"
	case VMAMirror:
		return "mirror"
	}
	return "vma?"
}

// Backing is the physical storage behind one or more VMAs — the simulator's
// analogue of a backing file. Mirror pages are created by mapping the same
// Backing at a second virtual range (paper §3.3.3).
type Backing struct {
	Frames []vm.FrameID
	refs   int
}

// Pages returns the number of pages in the backing.
func (b *Backing) Pages() int { return len(b.Frames) }

// VMA is one contiguous virtual memory area of the process.
type VMA struct {
	Base    uint64
	Pages   int
	Prot    pagetable.Prot
	Kind    VMAKind
	Name    string
	Backing *Backing
	// MirrorOf points at the VMA this region mirrors (for VMAMirror).
	MirrorOf *VMA
	// Owner is the thread the region belongs to (stack VMAs; NoTID for
	// process-wide regions). The static privacy pre-pass keys stack
	// pre-seeding off it.
	Owner TID
}

// End returns the first address past the VMA.
func (v *VMA) End() uint64 { return v.Base + uint64(v.Pages)*vm.PageSize }

// Contains reports whether addr falls inside the VMA.
func (v *VMA) Contains(addr uint64) bool { return addr >= v.Base && addr < v.End() }

// String describes the VMA.
func (v *VMA) String() string {
	return fmt.Sprintf("%s [%#x,%#x) %s %q", v.Kind, v.Base, v.End(), v.Prot, v.Name)
}

// VMAListener observes address-space changes. Umbra (shadow allocation),
// the mirror manager (alias creation) and AikidoSD (protecting new pages)
// all register one.
type VMAListener interface {
	VMAAdded(v *VMA)
	VMARemoved(v *VMA)
}

// Hooks let the embedding system observe guest events. All fields are
// optional.
type Hooks struct {
	// ContextSwitch fires when the scheduler switches threads within the
	// process. The real kernel's write to the FS segment register at this
	// point is what AikidoVM traps (§3.2.3).
	ContextSwitch func(old, new TID)
	// ThreadStarted fires after a thread becomes runnable the first time.
	ThreadStarted func(t *Thread, creator TID)
	// ThreadExited fires when a thread halts.
	ThreadExited func(t *Thread)
	// ThreadJoined fires when a join completes: joiner has observed
	// child's termination (a happens-before edge for analyses).
	ThreadJoined func(joiner TID, child *Thread)
	// LockAcquired/LockReleased fire on successful futex transitions;
	// shared-data analyses hook these for happens-before edges.
	LockAcquired func(t *Thread, lock int64)
	LockReleased func(t *Thread, lock int64)
	// BarrierWait fires when a thread arrives at a barrier (before
	// blocking); BarrierRelease fires once per thread when it is released.
	BarrierWait    func(t *Thread, id int64)
	BarrierRelease func(t *Thread, id int64)
	// Syscall fires for every syscall entry.
	Syscall func(t *Thread, num int64)
	// TxBegin/TxEnd implement the SysTxBegin/SysTxEnd syscalls when an
	// STM runtime is attached; the returned value becomes the guest R0
	// (TxEnd: 1 = committed, 0 = aborted, retry). Nil hooks commit
	// vacuously.
	TxBegin func(t *Thread) int64
	TxEnd   func(t *Thread) int64
}

// Bus is the path by which the guest kernel touches memory on behalf of a
// thread (user=false accesses). It is wired to the hypervisor MMU so kernel
// accesses to Aikido-protected pages exercise the §3.2.6 emulation path.
type Bus interface {
	Load(tid TID, addr uint64, size uint8, user bool) (uint64, *pagetable.Fault)
	Store(tid TID, addr uint64, size uint8, val uint64, user bool) *pagetable.Fault
}

// directBus is the default Bus: it walks the guest page table (kernel mode)
// and accesses machine memory directly. Used when no hypervisor is present
// (native runs and unit tests).
type directBus struct{ p *Process }

func (b directBus) Load(_ TID, addr uint64, size uint8, _ bool) (uint64, *pagetable.Fault) {
	pte, fault := b.p.PT.Walk(addr, pagetable.AccessRead, false)
	if fault != nil {
		return 0, fault
	}
	return b.p.M.ReadU(pte.Frame, vm.PageOff(addr), size), nil
}

func (b directBus) Store(_ TID, addr uint64, size uint8, val uint64, _ bool) *pagetable.Fault {
	pte, fault := b.p.PT.Walk(addr, pagetable.AccessWrite, false)
	if fault != nil {
		return fault
	}
	b.p.M.WriteU(pte.Frame, vm.PageOff(addr), size, val)
	return nil
}

// SchedPolicy selects the guest scheduler's behaviour.
type SchedPolicy uint8

// Scheduling policies.
const (
	// SchedRoundRobin is the default: FIFO round-robin over runnable
	// threads with a fixed quantum (a deterministic stand-in for CFS).
	SchedRoundRobin SchedPolicy = iota
	// SchedSerialDFS executes the program serially in depth-first order:
	// thread creation runs the child to completion before the creator
	// resumes, exactly like a function call. This is the execution model
	// of the Nondeterminator (paper §1, ref [17]): a schedule-independent
	// determinacy-race detector analyses one canonical serial execution
	// of a fork-join program.
	SchedSerialDFS
)

// Process is one guest process: address space + threads + kernel objects.
type Process struct {
	M    *vm.Machine
	PT   *pagetable.Table
	Prog *isa.Program

	// Policy is the scheduling policy (default SchedRoundRobin). Set it
	// before execution starts.
	Policy SchedPolicy

	Hooks Hooks

	vmas      []*VMA
	listeners []VMAListener

	threads map[TID]*Thread
	runq    []TID
	current TID
	nextTID TID

	brk      uint64 // current program break
	mmapNext uint64 // next anonymous mapping address

	locks    map[int64]*lockState
	barriers map[int64]*barrierState

	bus Bus

	// Console receives SysWrite output.
	Console bytes.Buffer

	// Exited is set by SysExit; ExitCode holds its argument.
	Exited   bool
	ExitCode int64

	// Stats.
	ContextSwitches uint64
	SyscallCount    uint64
	LockContentions uint64
}

// NewProcess loads prog into a fresh address space and creates the main
// thread (TID 1), ready to run at prog.Entry.
func NewProcess(m *vm.Machine, prog *isa.Program) (*Process, error) {
	if err := prog.Valid(); err != nil {
		return nil, err
	}
	p := &Process{
		M:        m,
		PT:       pagetable.New(),
		Prog:     prog,
		threads:  make(map[TID]*Thread),
		locks:    make(map[int64]*lockState),
		barriers: make(map[int64]*barrierState),
		brk:      isa.HeapBase,
		mmapNext: isa.MmapBase,
		nextTID:  1,
	}
	p.bus = directBus{p}

	// Map the code segment read-only and install the instruction image.
	// (The image is written before AikidoSD protects anything, via direct
	// frame writes — the loader plays the role of execve.)
	codePages := int(vm.RoundUp(max64(prog.CodeBytes(), 1)) / vm.PageSize)
	codeVMA := p.addVMA(isa.CodeBase, codePages, pagetable.ProtRO, VMACode, "text")
	p.writeImage(codeVMA, encodeCode(prog))

	// Map the data segment read-write and install the initial image.
	dataPages := int(vm.RoundUp(max64(uint64(len(prog.Data)), 1)) / vm.PageSize)
	dataVMA := p.addVMA(isa.DataBase, dataPages, pagetable.ProtRW, VMAData, "data")
	p.writeImage(dataVMA, prog.Data)

	// Main thread: immediately current, so it leaves the run queue (the
	// queue holds only runnable-but-not-running threads).
	main := p.newThread(prog.Entry, 0, NoTID)
	p.current = main.ID
	p.runq = p.runq[1:]
	return p, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// encodeCode produces the byte image of the instruction stream. The
// encoding is a placeholder (instruction index), but it gives code pages
// real, mapped contents so that DynamoRIO's block builder has something to
// read and fault on.
func encodeCode(prog *isa.Program) []byte {
	img := make([]byte, prog.CodeBytes())
	for i := range prog.Code {
		off := i * isa.InstrBytes
		img[off] = byte(prog.Code[i].Op)
		img[off+1] = byte(i)
		img[off+2] = byte(i >> 8)
		img[off+3] = byte(i >> 16)
	}
	return img
}

// SetBus replaces the kernel memory access path (wired to the hypervisor
// MMU by the Aikido system assembly).
func (p *Process) SetBus(b Bus) { p.bus = b }

// AddVMAListener registers an address-space observer and replays existing
// VMAs to it so late-attaching components (Umbra, the mirror manager) see
// the whole space.
func (p *Process) AddVMAListener(l VMAListener) {
	p.listeners = append(p.listeners, l)
	for _, v := range p.vmas {
		l.VMAAdded(v)
	}
}

// AddVMAListenerFront registers an address-space observer ahead of every
// already-registered listener. Listeners are notified in registration
// order, so a front listener observes each VMA change before components
// registered earlier react to it — the deferred dispatch pipeline uses
// this to drain banked accesses before Umbra or an analysis mutates any
// per-range state the replay depends on.
func (p *Process) AddVMAListenerFront(l VMAListener) {
	p.listeners = append([]VMAListener{l}, p.listeners...)
	for _, v := range p.vmas {
		l.VMAAdded(v)
	}
}

// addVMA allocates backing frames, maps them and notifies listeners.
func (p *Process) addVMA(base uint64, pages int, prot pagetable.Prot, kind VMAKind, name string) *VMA {
	return p.addOwnedVMA(base, pages, prot, kind, name, NoTID)
}

// addOwnedVMA is addVMA for per-thread regions: the owner is set before
// installation so every listener sees it in its first VMAAdded.
func (p *Process) addOwnedVMA(base uint64, pages int, prot pagetable.Prot, kind VMAKind, name string, owner TID) *VMA {
	b := &Backing{Frames: make([]vm.FrameID, pages), refs: 1}
	for i := range b.Frames {
		b.Frames[i] = p.M.AllocFrame()
	}
	v := &VMA{Base: base, Pages: pages, Prot: prot, Kind: kind, Name: name, Backing: b, Owner: owner}
	p.installVMA(v)
	return v
}

// MapAlias maps an existing backing at a new base address — the double-mmap
// that creates mirror regions (§3.3.3). The alias shares physical frames
// with the original.
func (p *Process) MapAlias(of *VMA, base uint64, prot pagetable.Prot, kind VMAKind, name string) *VMA {
	of.Backing.refs++
	v := &VMA{Base: base, Pages: of.Pages, Prot: prot, Kind: kind, Name: name,
		Backing: of.Backing, MirrorOf: of}
	p.installVMA(v)
	return v
}

// MapShadow allocates an analysis-runtime region (Umbra shadow memory) that
// AikidoSD will never protect.
func (p *Process) MapShadow(base uint64, pages int, name string) *VMA {
	return p.addVMA(base, pages, pagetable.ProtRW, VMAShadow, name)
}

// MapRuntime allocates an analysis-runtime region with explicit guest
// protections (used for AikidoLib's fault-delivery pages, which must be
// mapped but deny the matching access kind, §3.2.5).
func (p *Process) MapRuntime(base uint64, pages int, prot pagetable.Prot, name string) *VMA {
	return p.addVMA(base, pages, prot, VMAShadow, name)
}

func (p *Process) installVMA(v *VMA) {
	for i := 0; i < v.Pages; i++ {
		vpn := vm.PageNum(v.Base) + uint64(i)
		if _, exists := p.PT.Lookup(vpn); exists {
			panic(fmt.Sprintf("guest: VMA %s overlaps mapped page %#x", v, vpn<<vm.PageShift))
		}
		p.PT.Map(vpn, v.Backing.Frames[i], v.Prot)
	}
	p.vmas = append(p.vmas, v)
	for _, l := range p.listeners {
		l.VMAAdded(v)
	}
}

// removeVMA unmaps a VMA and releases the backing when its last mapping
// goes away.
func (p *Process) removeVMA(v *VMA) {
	for i := 0; i < v.Pages; i++ {
		p.PT.Unmap(vm.PageNum(v.Base) + uint64(i))
	}
	for i, w := range p.vmas {
		if w == v {
			p.vmas = append(p.vmas[:i], p.vmas[i+1:]...)
			break
		}
	}
	v.Backing.refs--
	if v.Backing.refs == 0 {
		for _, f := range v.Backing.Frames {
			p.M.FreeFrame(f)
		}
	}
	for _, l := range p.listeners {
		l.VMARemoved(v)
	}
}

// writeImage copies data into the VMA's frames directly (loader path; no
// protection checks).
func (p *Process) writeImage(v *VMA, data []byte) {
	for i := 0; i < v.Pages && len(data) > 0; i++ {
		n := len(data)
		if n > vm.PageSize {
			n = vm.PageSize
		}
		p.M.Write(v.Backing.Frames[i], 0, data[:n])
		data = data[n:]
	}
}

// VMAs returns the current address-space layout (do not mutate).
func (p *Process) VMAs() []*VMA { return p.vmas }

// FindVMA returns the VMA containing addr, or nil.
func (p *Process) FindVMA(addr uint64) *VMA {
	for _, v := range p.vmas {
		if v.Contains(addr) {
			return v
		}
	}
	return nil
}

// Brk returns the current program break.
func (p *Process) Brk() uint64 { return p.brk }

// KernelReadBytes reads n bytes at addr through the kernel access path,
// used by syscalls that take user buffers.
func (p *Process) KernelReadBytes(tid TID, addr uint64, n int) ([]byte, *pagetable.Fault) {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		v, fault := p.bus.Load(tid, addr+uint64(i), 1, false)
		if fault != nil {
			return nil, fault
		}
		out = append(out, byte(v))
	}
	return out, nil
}

package guest

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

func TestSysYield(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	res, err := p.DoSyscall(main, isa.SysYield)
	if err != nil || res != SyscallYield {
		t.Errorf("yield: %v %v", res, err)
	}
}

func TestUnknownSyscall(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	if _, err := p.DoSyscall(p.Current(), 999); err == nil {
		t.Error("unknown syscall accepted")
	}
}

func TestMmapSyscallPath(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = 2 * vm.PageSize
	main.Regs[isa.R1] = 0 // default protection
	res, err := p.DoSyscall(main, isa.SysMmap)
	if err != nil || res != SyscallDone {
		t.Fatalf("mmap: %v %v", res, err)
	}
	base := main.Regs[isa.R0]
	if v := p.FindVMA(base); v == nil || v.Prot != pagetable.ProtRW {
		t.Errorf("mmap result VMA: %v", v)
	}
	// munmap syscall path.
	main.Regs[isa.R0] = base
	if _, err := p.DoSyscall(main, isa.SysMunmap); err != nil {
		t.Fatal(err)
	}
	if p.FindVMA(base) != nil {
		t.Error("munmap syscall did not unmap")
	}
	// munmap of garbage errors.
	main.Regs[isa.R0] = 0xdead000
	if _, err := p.DoSyscall(main, isa.SysMunmap); err == nil {
		t.Error("bad munmap accepted")
	}
}

func TestBrkSyscallPath(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = 0
	p.DoSyscall(main, isa.SysBrk)
	if main.Regs[isa.R0] != isa.HeapBase {
		t.Errorf("brk(0) = %#x", main.Regs[isa.R0])
	}
	main.Regs[isa.R0] = isa.HeapBase + 100
	p.DoSyscall(main, isa.SysBrk)
	if main.Regs[isa.R0] != isa.HeapBase+vm.PageSize {
		t.Errorf("brk grow = %#x", main.Regs[isa.R0])
	}
}

func TestWriteSyscallLengthGuard(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = isa.DataBase
	main.Regs[isa.R1] = 1 << 30 // absurd length
	if _, err := p.DoSyscall(main, isa.SysWrite); err == nil {
		t.Error("giant write accepted")
	}
}

func TestWriteSyscallFaultingBuffer(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = 0x7777_0000_0000 // unmapped
	main.Regs[isa.R1] = 4
	if _, err := p.DoSyscall(main, isa.SysWrite); err == nil {
		t.Error("write from unmapped buffer succeeded")
	}
}

func TestThreadCreateBadEntry(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = 1 << 30 // entry far out of range
	if _, err := p.DoSyscall(main, isa.SysThreadCreate); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestJoinUnknownThread(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	main := p.Current()
	main.Regs[isa.R0] = 99
	if _, err := p.DoSyscall(main, isa.SysThreadJoin); err == nil {
		t.Error("join of unknown thread accepted")
	}
}

func TestVMAStringAndKinds(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	v := p.FindVMA(isa.CodeBase)
	s := v.String()
	if !strings.Contains(s, "code") || !strings.Contains(s, "text") {
		t.Errorf("VMA string: %q", s)
	}
	kinds := []VMAKind{VMACode, VMAData, VMAHeap, VMAStack, VMAMmap, VMAShadow, VMAMirror}
	for _, k := range kinds {
		if k.String() == "vma?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestThreadStateStrings(t *testing.T) {
	for _, s := range []ThreadState{Runnable, Blocked, Done} {
		if s.String() == "state?" {
			t.Errorf("state %d unnamed", s)
		}
	}
}

func TestThreadsListing(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	p.newThread(0, 0, 1)
	p.newThread(0, 0, 1)
	ids := p.Threads()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("Threads = %v", ids)
	}
	if p.Thread(2) == nil || p.Thread(9) != nil {
		t.Error("Thread lookup wrong")
	}
}

func TestOverlappingVMAPanics(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	defer func() {
		if recover() == nil {
			t.Error("overlapping VMA accepted")
		}
	}()
	p.MapShadow(isa.DataBase, 1, "overlap")
}

func TestKernelReadBytes(t *testing.T) {
	b := isa.NewBuilder("krb")
	addr := b.Global(16, 8)
	copy(b.Data()[addr-isa.DataBase:], "kernelread")
	b.Nop().Halt()
	p := newProc(t, b.MustFinish())
	got, fault := p.KernelReadBytes(1, addr, 10)
	if fault != nil || string(got) != "kernelread" {
		t.Errorf("KernelReadBytes = %q, %v", got, fault)
	}
	if _, fault := p.KernelReadBytes(1, 0xdead0000, 1); fault == nil {
		t.Error("kernel read of unmapped memory succeeded")
	}
}

func TestStackStride(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	t2 := p.newThread(0, 0, 1)
	main := p.Current()
	if t2.Stack.Base-main.Stack.Base != isa.StackStride {
		t.Errorf("stack stride = %#x", t2.Stack.Base-main.Stack.Base)
	}
}

func TestWakePanicsOnBadState(t *testing.T) {
	p := newProc(t, tinyProgram(t))
	defer func() {
		if recover() == nil {
			t.Error("waking a runnable thread did not panic")
		}
	}()
	p.wake(1) // main is Runnable, not Blocked
}

// Command detlint is the repository's determinism linter. Deterministic
// replay is a correctness property here — findings, reports, and
// disassembly must be byte-identical run to run — so the patterns that
// most often smuggle nondeterminism into Go code are banned outright:
//
//   - time.Now / time.Since anywhere outside internal/runner (the one
//     package that legitimately measures wall clock, and whose
//     measurements are explicitly excluded from deterministic reports).
//   - Package-level math/rand calls (rand.Intn, rand.Shuffle, ...),
//     which draw from the global, unseeded source. Constructing an
//     explicitly seeded generator (rand.New, rand.NewSource,
//     rand.NewZipf) is fine.
//   - Ranging over a map while feeding ordered output (append, Print*,
//     Fprint*, Write*) inside the loop body. Map iteration order is
//     random; anything ordered built from it must sort first. This is a
//     heuristic: it flags ranges whose operand is syntactically a map
//     (map literal, make(map...), or a variable the same file declares
//     as a map) and whose body grows a slice or writes output. The
//     collect-then-sort idiom is recognized: a sort.* / slices.Sort*
//     call after the loop in the same block sanitizes it.
//
// A deliberate exception is silenced with a trailing comment on the
// offending line, or a comment on the line directly above:
//
//	//detlint:ok <reason>
//
// The reason is mandatory — a bare //detlint:ok does not silence.
// _test.go files and testdata directories are skipped.
//
// Usage (CI runs exactly this):
//
//	go run ./tools/detlint ./...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type finding struct {
	pos token.Position
	msg string
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var findings []finding
	for _, arg := range args {
		root := strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fs, ferr := lintFile(path)
			findings = append(findings, fs...)
			return ferr
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d determinism finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintFile parses one file and applies every rule to it.
func lintFile(path string) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	allowed := allowlist(fset, file)
	timeName, randName := importNames(file)
	mapVars := declaredMapVars(file)
	sorted := sanitizedRanges(file)
	// internal/runner owns wall-clock measurement by design.
	wallExempt := strings.Contains(filepath.ToSlash(path), "internal/runner/")

	var out []finding
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line] || allowed[p.Line-1] {
			return
		}
		out = append(out, finding{pos: p, msg: msg})
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case pkg.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") && !wallExempt:
				report(n.Pos(), fmt.Sprintf(
					"time.%s outside internal/runner breaks deterministic replay; plumb the simulated clock or move the measurement into the runner",
					sel.Sel.Name))
			case pkg.Name == randName && !seededConstructor(sel.Sel.Name):
				report(n.Pos(), fmt.Sprintf(
					"rand.%s draws from the global unseeded source; construct rand.New(rand.NewSource(seed)) instead",
					sel.Sel.Name))
			}
		case *ast.RangeStmt:
			if isMapExpr(n.X, mapVars) && feedsOrdering(n.Body) && !sorted[n.Pos()] {
				report(n.Pos(),
					"range over a map feeds ordered output; map iteration order is random — collect keys and sort first")
			}
		}
		return true
	})
	return out, nil
}

// allowlist returns the set of lines carrying a //detlint:ok comment
// with a non-empty reason.
func allowlist(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//detlint:ok")
			if !ok || strings.TrimSpace(rest) == "" {
				continue
			}
			// Findings check their own line and the line above, so both
			// trailing and preceding placements of the comment work.
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// importNames returns the local names of the "time" and "math/rand"
// imports ("" when not imported).
func importNames(file *ast.File) (timeName, randName string) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			timeName = orDefault(name, "time")
		case "math/rand", "math/rand/v2":
			randName = orDefault(name, "rand")
		}
	}
	return
}

func orDefault(name, def string) string {
	if name == "" {
		return def
	}
	if name == "_" || name == "." {
		// Dot/blank imports defeat selector matching; treat as absent.
		return ""
	}
	return name
}

// seededConstructor reports whether a math/rand function is safe at
// package level because it only constructs explicitly-seeded state.
func seededConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return true
	}
	return false
}

// declaredMapVars collects names the file declares with a syntactically
// visible map type: `var x map[...]`, `x := make(map[...]...)`, or
// `x := map[...]{...}`. Name-level, not scope-aware — good enough for a
// heuristic that is silenced per line anyway.
func declaredMapVars(file *ast.File) map[string]bool {
	vars := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, name := range n.Names {
					vars[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if exprIsMap(rhs) {
					vars[id.Name] = true
				}
			}
		}
		return true
	})
	return vars
}

// exprIsMap reports whether an expression is syntactically a map value:
// a map composite literal or make(map[...]...).
func exprIsMap(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) == 0 {
			return false
		}
		_, ok = e.Args[0].(*ast.MapType)
		return ok
	}
	return false
}

// isMapExpr reports whether a range operand is (heuristically) a map.
func isMapExpr(e ast.Expr, mapVars map[string]bool) bool {
	if exprIsMap(e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		return mapVars[id.Name]
	}
	return false
}

// sanitizedRanges marks range statements that are followed, later in
// the same enclosing block, by a sort.* or slices.Sort* call — the
// collect-then-sort idiom this linter wants people to use.
func sanitizedRanges(file *ast.File) map[token.Pos]bool {
	ok := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		block, isBlock := n.(*ast.BlockStmt)
		if !isBlock {
			return true
		}
		for i, st := range block.List {
			rs, isRange := st.(*ast.RangeStmt)
			if !isRange {
				continue
			}
			for _, later := range block.List[i+1:] {
				if stmtSorts(later) {
					ok[rs.Pos()] = true
					break
				}
			}
		}
		return true
	})
	return ok
}

// stmtSorts reports whether a statement is (or contains, for simple
// expression/assign statements) a sort.* or slices.Sort* call.
func stmtSorts(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok {
				if pkg.Name == "sort" ||
					(pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// feedsOrdering reports whether a loop body grows an ordered
// accumulation: an append call, or a call whose method name looks like
// output (Print*, Fprint*, Write*, WriteString, Sprintf into append...).
func feedsOrdering(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				found = true
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
				strings.HasPrefix(name, "Write") {
				found = true
			}
		}
		return !found
	})
	return found
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSource writes src under dir/rel and lints it, returning the
// finding messages.
func lintSource(t *testing.T, rel, src string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := lintFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range fs {
		msgs = append(msgs, f.msg)
	}
	return msgs
}

func wantFinding(t *testing.T, msgs []string, substr string) {
	t.Helper()
	for _, m := range msgs {
		if strings.Contains(m, substr) {
			return
		}
	}
	t.Errorf("no finding containing %q in %v", substr, msgs)
}

func TestWallClockForbidden(t *testing.T) {
	src := `package p
import "time"
func f() time.Time { return time.Now() }
func g(s time.Time) time.Duration { return time.Since(s) }
`
	msgs := lintSource(t, "p/p.go", src)
	if len(msgs) != 2 {
		t.Fatalf("want 2 findings, got %v", msgs)
	}
	wantFinding(t, msgs, "time.Now")
	wantFinding(t, msgs, "time.Since")
}

func TestWallClockExemptInRunner(t *testing.T) {
	src := `package runner
import "time"
func f() time.Time { return time.Now() }
`
	if msgs := lintSource(t, "internal/runner/runner.go", src); len(msgs) != 0 {
		t.Errorf("internal/runner should be exempt, got %v", msgs)
	}
}

func TestAliasedImportStillCaught(t *testing.T) {
	src := `package p
import clock "time"
func f() clock.Time { return clock.Now() }
`
	wantFinding(t, lintSource(t, "p/p.go", src), "time.Now")
}

func TestGlobalRandForbiddenSeededAllowed(t *testing.T) {
	src := `package p
import "math/rand"
func f() int { return rand.Intn(10) }
func g() *rand.Rand { return rand.New(rand.NewSource(1)) }
`
	msgs := lintSource(t, "p/p.go", src)
	if len(msgs) != 1 {
		t.Fatalf("want exactly the rand.Intn finding, got %v", msgs)
	}
	wantFinding(t, msgs, "rand.Intn")
}

func TestRangeOverMapFeedingOutput(t *testing.T) {
	src := `package p
import "fmt"
func f(m map[string]int) {
	byName := map[string]int{}
	for k, v := range byName {
		fmt.Println(k, v)
	}
	var out []string
	for k := range byName {
		out = append(out, k)
	}
}
`
	msgs := lintSource(t, "p/p.go", src)
	if len(msgs) != 2 {
		t.Fatalf("want 2 findings, got %v", msgs)
	}
	wantFinding(t, msgs, "map iteration order")
}

func TestCollectThenSortSanitizes(t *testing.T) {
	src := `package p
import "sort"
func f() []string {
	m := map[string]int{}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`
	if msgs := lintSource(t, "p/p.go", src); len(msgs) != 0 {
		t.Errorf("collect-then-sort idiom should be clean, got %v", msgs)
	}
}

func TestRangeOverMapWithoutOutputClean(t *testing.T) {
	src := `package p
func f(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
`
	// m is a parameter, not a file-local map declaration — and the body
	// feeds a commutative reduction, not an ordering. Either way: clean.
	if msgs := lintSource(t, "p/p.go", src); len(msgs) != 0 {
		t.Errorf("commutative reduction should be clean, got %v", msgs)
	}
}

func TestAllowlistComment(t *testing.T) {
	src := `package p
import "time"
func f() time.Time {
	return time.Now() //detlint:ok frozen clock injected in tests
}
func g() time.Time {
	//detlint:ok reason above the line
	return time.Now()
}
func h() time.Time {
	//detlint:ok
	return time.Now()
}
`
	// The first two are silenced (trailing and line-above); the bare
	// //detlint:ok with no reason must NOT silence.
	msgs := lintSource(t, "p/p.go", src)
	if len(msgs) != 1 {
		t.Fatalf("want 1 finding (reasonless allowlist rejected), got %v", msgs)
	}
}

// Command aikido-run executes one PARSEC benchmark model — or, with
// -bench all, every model concurrently — under a chosen detector
// configuration and prints the run's statistics and findings.
//
// Usage:
//
//	aikido-run [-bench NAME|all] [-mode native|dbi|fasttrack|aikido|profile]
//	           [-analysis NAME[,NAME...]] [-max-findings N] [-epoch]
//	           [-dispatch inline|deferred]
//	           [-provider aikidovm|dos|dthreads] [-paging shadow|nested]
//	           [-switch hypercall|segtrap|probe]
//	           [-threads N] [-scale F] [-workers N] [-findings] [-list]
//	           [-list-analyses]
//
// -analysis takes any comma-separated selection from the analysis
// registry ("fasttrack", "lockset", "atomicity", "commgraph", "taint",
// "memcheck", "spbags", "sampled[:NAME]", aliases like "ft"); multiple
// names multiplex onto ONE instrumented execution — a single DBI+sharing
// pass hosts every selected analysis, the paper's §7 framework claim in
// flag form. The findings table is driven by the registry's uniform
// findings surface: no per-detector switch exists here, and a newly
// registered analysis shows up without touching this command.
//
// -epoch enables epoch-based re-privatization in the Aikido modes
// (sharing.DefaultEpochPolicy): Shared pages that fall back to a single
// owner are demoted to Private(owner)/Unused at epoch boundaries and
// their instructions return to native speed; the epoch statistics lines
// report the demotion traffic.
//
// -dispatch deferred banks access events in per-thread rings and replays
// them through the selected analyses in deterministic batches at
// synchronization boundaries instead of calling them per access; findings
// and statistics are identical to the inline default (the run report adds
// the pipeline's drain/record counts).
//
// -list-analyses prints the registry catalog: canonical names, the short
// aliases that resolve to them, and the wrapper combinator in composed
// form ("sampled:<name>").
//
// All execution goes through the concurrent runner (internal/runner):
// -bench all shards the ten models across -workers pool workers, and the
// printed statistics are identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/hypervisor"
	"repro/internal/parsec"
	"repro/internal/provider"
	"repro/internal/runner"
	"repro/internal/sharing"
)

func main() {
	bench := flag.String("bench", "fluidanimate", "benchmark name (see -list), or \"all\" to sweep every model")
	mode := flag.String("mode", "aikido", "native, dbi, fasttrack, aikido, profile")
	analyses := flag.String("analysis", "fasttrack", "comma-separated analyses to multiplex onto one pass (see -list-analyses)")
	maxFindings := flag.Int("max-findings", 0, "cap stored findings for the whole run, divided across the selected analyses (0 = each detector's default)")
	epoch := flag.Bool("epoch", false, "enable epoch-based re-privatization of Shared pages (Aikido modes)")
	dispatch := flag.String("dispatch", "inline", "analysis dispatch mode: inline (per access) or deferred (batched ring drains)")
	prov := flag.String("provider", "aikidovm", "per-thread protection provider: aikidovm, dos, dthreads (§7.1)")
	paging := flag.String("paging", "shadow", "AikidoVM paging mode: shadow, nested (§3.2.2)")
	swi := flag.String("switch", "hypercall", "context-switch interception: hypercall, segtrap, probe (§3.2.3)")
	threads := flag.Int("threads", 0, "worker threads (0 = benchmark default)")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	workers := flag.Int("workers", runtime.NumCPU(), "runner pool size for -bench all (results are identical at any value)")
	findings := flag.Bool("findings", false, "print every detected race/warning/violation/flow")
	races := flag.Bool("races", false, "alias for -findings")
	list := flag.Bool("list", false, "list benchmarks and exit")
	listAn := flag.Bool("list-analyses", false, "list registered analyses and exit")
	flag.Parse()
	printFindings := *findings || *races

	if *list {
		for _, n := range parsec.Names() {
			fmt.Println(n)
		}
		return
	}
	if *listAn {
		for _, line := range analysis.Catalog() {
			fmt.Println(line)
		}
		return
	}

	m, ok := map[string]core.Mode{
		"native":    core.ModeNative,
		"dbi":       core.ModeDBI,
		"fasttrack": core.ModeFastTrackFull,
		"aikido":    core.ModeAikidoFastTrack,
		"profile":   core.ModeAikidoProfile,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	pk, ok := map[string]provider.Kind{
		"aikidovm": provider.AikidoVM,
		"dos":      provider.DOS,
		"dthreads": provider.Dthreads,
	}[*prov]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown provider %q\n", *prov)
		os.Exit(2)
	}
	pg, ok := map[string]hypervisor.PagingMode{
		"shadow": hypervisor.ShadowPaging,
		"nested": hypervisor.NestedPaging,
	}[*paging]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown paging mode %q\n", *paging)
		os.Exit(2)
	}
	sw, ok := map[string]hypervisor.SwitchInterception{
		"hypercall": hypervisor.SwitchHypercall,
		"segtrap":   hypervisor.SwitchSegTrap,
		"probe":     hypervisor.SwitchProbe,
	}[*swi]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown switch mechanism %q\n", *swi)
		os.Exit(2)
	}

	cfg := core.DefaultConfig(m)
	cfg.Analyses = analysis.ParseList(*analyses)
	cfg.MaxFindings = *maxFindings
	dm, err := core.ParseDispatchMode(*dispatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		os.Exit(2)
	}
	cfg.Dispatch = dm
	cfg.Provider = pk
	cfg.Paging = pg
	cfg.Switch = sw
	if *epoch {
		cfg.Epoch = sharing.DefaultEpochPolicy()
	}

	size := func(b parsec.Benchmark) parsec.Benchmark {
		b = b.WithScale(*scale)
		if *threads > 0 {
			b = b.WithThreads(*threads)
		}
		return b
	}

	if *bench == "all" {
		var specs []runner.Spec
		for _, b := range parsec.All() {
			b = size(b)
			specs = append(specs, runner.Spec{Label: b.Name, Workload: b.Spec, Config: cfg})
		}
		rep, err := runner.Sweep(specs, runner.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mode %s, analyses %v, scale %.2f, %d runner workers\n",
			m, cfg.Analyses, *scale, rep.Workers)
		fmt.Printf("%-15s %14s %14s %14s %14s %9s %9s\n",
			"benchmark", "cycles", "instructions", "mem refs", "instrumented", "shared%", "findings")
		total := 0
		for _, c := range rep.Cells {
			res := c.Res
			fmt.Printf("%-15s %14d %14d %14d %14d %8.2f%% %9d\n",
				c.Spec.Label, res.Cycles, res.Engine.Instructions, res.Engine.MemRefs,
				res.Engine.InstrumentedExecs, 100*res.SharedAccessFraction(), res.TotalFindings())
			total += res.TotalFindings()
		}
		t := rep.Totals
		fmt.Printf("%-15s %14d %14d %14d %14d %9s %9d\n",
			"total", t.Cycles, t.Instructions, t.MemRefs, t.InstrumentedExecs, "", total)
		if printFindings {
			for _, c := range rep.Cells {
				for _, name := range c.Res.AnalysisNames() {
					for _, line := range c.Res.Findings[name].Strings() {
						fmt.Printf("%s: %s: %s\n", c.Spec.Label, name, line)
					}
				}
			}
		}
		return
	}

	b, err := parsec.ByName(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		os.Exit(2)
	}
	b = size(b)
	rep, err := runner.Sweep([]runner.Spec{{Label: b.Name, Workload: b.Spec, Config: cfg}},
		runner.Options{Workers: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		os.Exit(1)
	}
	res := rep.Cells[0].Res

	fmt.Printf("benchmark        %s (%d worker threads, scale %.2f)\n", b.Name, b.Spec.Threads, *scale)
	fmt.Printf("mode             %s\n", res.Mode)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("instructions     %d\n", res.Engine.Instructions)
	fmt.Printf("memory refs      %d\n", res.Engine.MemRefs)
	fmt.Printf("instrumented     %d\n", res.Engine.InstrumentedExecs)
	fmt.Printf("context switches %d\n", res.GuestContextSwitches)
	if res.DeferredDrains > 0 {
		fmt.Printf("deferred drains  %d (%d access records banked)\n", res.DeferredDrains, res.DeferredRecords)
	}
	if m == core.ModeAikidoFastTrack || m == core.ModeAikidoProfile {
		fmt.Printf("provider         %s (paging %s, switch %s)\n", pk, pg, sw)
		fmt.Printf("shared accesses  %d (%.2f%% of memory refs)\n",
			res.SD.SharedPageAccesses, 100*res.SharedAccessFraction())
		fmt.Printf("pages private    %d\n", res.SD.PagesPrivate)
		fmt.Printf("pages shared     %d\n", res.SD.PagesShared)
		fmt.Printf("prot ops         %d (+%d ranged)\n", res.Prov.ProtOps, res.Prov.RangeOps)
		fmt.Printf("provider faults  %d\n", res.Prov.Faults)
		if pk == provider.AikidoVM {
			fmt.Printf("aikido faults    %d\n", res.HV.AikidoFaults)
			fmt.Printf("hypercalls       %d\n", res.HV.Hypercalls)
		}
		fmt.Printf("instrumented PCs %d\n", res.SD.InstrumentedPCs)
		if *epoch {
			fmt.Printf("epoch sweeps     %d (%d ticks)\n", res.SD.EpochSweeps, res.EpochTicks)
			fmt.Printf("pages demoted    %d private, %d unused\n",
				res.SD.PagesDemotedPrivate, res.SD.PagesDemotedUnused)
			fmt.Printf("pages reshared   %d\n", res.SD.PagesReshared)
			fmt.Printf("PCs uninstr'd    %d\n", res.SD.PCsUninstrumented)
		}
	}
	// The findings table is registry-driven: one block per selected
	// analysis, rendered through the uniform findings surface.
	for _, name := range res.AnalysisNames() {
		f := res.Findings[name]
		fmt.Printf("analysis         %s: %s\n", name, f.Summary())
		fmt.Printf("findings         %d\n", f.Len())
		if printFindings {
			for _, line := range f.Strings() {
				fmt.Printf("  %s\n", line)
			}
		}
	}
}

// Command aikido-run executes one PARSEC benchmark model — or, with
// -bench all, every model concurrently — under a chosen detector
// configuration and prints the run's statistics and findings.
//
// Usage:
//
//	aikido-run [-bench NAME|all] [-mode native|dbi|fasttrack|aikido|profile]
//	           [-analysis NAME[,NAME...]] [-max-findings N] [-epoch]
//	           [-static] [-static-verify]
//	           [-dispatch inline|deferred|vectorized|parallel|phased]
//	           [-analysis-workers N]
//	           [-provider aikidovm|dos|dthreads] [-paging shadow|nested]
//	           [-switch hypercall|segtrap|probe]
//	           [-threads N] [-scale F] [-workers N] [-findings] [-list]
//	           [-list-analyses]
//	           [-chaos PLAN] [-max-cycles N] [-cell-deadline D] [-keep-going]
//
// -analysis takes any comma-separated selection from the analysis
// registry ("fasttrack", "lockset", "atomicity", "commgraph", "taint",
// "memcheck", "spbags", "sampled[:NAME]", aliases like "ft"); multiple
// names multiplex onto ONE instrumented execution — a single DBI+sharing
// pass hosts every selected analysis, the paper's §7 framework claim in
// flag form. The findings table is driven by the registry's uniform
// findings surface: no per-detector switch exists here, and a newly
// registered analysis shows up without touching this command.
//
// -epoch enables epoch-based re-privatization in the Aikido modes
// (sharing.DefaultEpochPolicy): Shared pages that fall back to a single
// owner are demoted to Private(owner)/Unused at epoch boundaries and
// their instructions return to native speed; the epoch statistics lines
// report the demotion traffic.
//
// -dispatch deferred banks access events in per-thread rings and replays
// them through the selected analyses in deterministic batches at
// synchronization boundaries instead of calling them per access; findings
// and statistics are identical to the inline default (the run report adds
// the pipeline's drain/record counts). -dispatch vectorized additionally
// groups each drained batch by page and hands contiguous same-page runs
// to the detectors' batch kernels, which coalesce same-epoch runs and
// retire report-free singletons against one hoisted metadata load —
// still byte-identical to inline under the default cost model. -dispatch
// parallel fans the page groups of each drained batch out across
// -analysis-workers analysis worker goroutines (page % N sharding, each
// worker owning a full replica of the selected analyses over its pages;
// sync events are full barriers and per-worker findings reconcile in
// canonical event order), and the report is byte-identical to inline at
// ANY worker count — only wall-clock varies. A worker fault (see -chaos,
// seam "worker") replays the batch inline and latches inline dispatch for
// the rest of the run; a selection containing an analysis without shard
// support degrades to vectorized dispatch. -dispatch phased delivers
// joined pages inline but flips pages the sharing detector classifies as
// hot — many-writer every epoch for a sustained streak — into
// Doppel-style split phases (docs/phases.md): split-page accesses bank
// in per-thread delta rings and a reconciliation merge replays them in
// canonical (seq, addr, kind) order at every drain point, strictly
// before any phase flip, sync event or epoch sweep, so findings are
// byte-identical to inline on any schedule. Phased dispatch implies
// -epoch (the classifier lives in the epoch sweep; the default policies
// are filled in when unset). A reconcile fault (seam "reconcile")
// replays the merged batch inline and latches inline dispatch — no
// banked record is lost or duplicated.
//
// -static enables the static privacy pre-pass in the Aikido modes
// (internal/staticanalysis): before first execution, a CFG + abstract
// interpretation over the guest program prunes instrumentation of PCs
// proven to touch only thread-private memory and pre-seeds statically
// single-owner pages as Private(owner). Findings are byte-identical to
// the pass being off — page protections stay armed as the safety net —
// and the static-stats report line shows what the pass delivered.
// -static-verify implies -static and instruments every pruned PC with a
// tripwire assertion that hard-fails the run if a "private" access ever
// observes a Shared page (for equivalence suites, not benchmarks).
// Selecting a retire-observer analysis (taint) forces the unpruned
// dynamic-only path: those analyses watch every retired instruction, so
// nothing may be pruned from their stream; the run reports the fallback.
//
// -list-analyses prints the registry catalog: canonical names, the short
// aliases that resolve to them, and the wrapper combinator in composed
// form ("sampled:<name>"). Note that selecting "taint" (a retire
// observer) forces -static's unpruned fallback path.
//
// Fault isolation (see internal/faultinject and ARCHITECTURE.md):
// -chaos injects a deterministic fault plan ("seed=N;KIND:SEAM[@COUNT];…"
// with kinds panic|error|stall and seams
// provider|guest|drain|worker|analysis|reconcile|static) into every cell; -max-cycles and -cell-deadline bound each cell's
// simulated-cycle and wall-clock consumption with typed budget errors;
// -keep-going records failing cells in the report and finishes the rest
// of the sweep instead of aborting on the first error.
//
// All execution goes through the concurrent runner (internal/runner):
// -bench all shards the ten models across -workers pool workers, and the
// printed statistics are identical at any worker count. A failing cell —
// injected or genuine — never crashes the process: it surfaces as a
// typed cell error.
//
// Exit codes: 0 clean, 1 findings reported, 2 cell error (a run failed,
// even under -keep-going), 3 flag/usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hypervisor"
	"repro/internal/parsec"
	"repro/internal/provider"
	"repro/internal/runner"
	"repro/internal/sharing"
)

// Exit codes, distinct so scripts can tell outcome classes apart.
const (
	exitClean     = 0 // ran, no findings
	exitFindings  = 1 // ran, at least one race/warning/violation reported
	exitCellError = 2 // at least one cell failed (panic, budget, run error)
	exitBadFlags  = 3 // unusable flags or values; nothing ran
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("aikido-run", flag.ContinueOnError)
	bench := fs.String("bench", "fluidanimate", "benchmark name (see -list), or \"all\" to sweep every model")
	mode := fs.String("mode", "aikido", "native, dbi, fasttrack, aikido, profile")
	analyses := fs.String("analysis", "fasttrack", "comma-separated analyses to multiplex onto one pass (see -list-analyses)")
	maxFindings := fs.Int("max-findings", 0, "cap stored findings for the whole run, divided across the selected analyses (0 = each detector's default)")
	epoch := fs.Bool("epoch", false, "enable epoch-based re-privatization of Shared pages (Aikido modes)")
	static := fs.Bool("static", false, "enable the static privacy pre-pass: prune instrumentation of provably-private PCs and pre-seed single-owner pages (Aikido modes; findings identical to off)")
	staticVerify := fs.Bool("static-verify", false, "implies -static; add a tripwire assertion to every pruned PC that hard-fails if its proof is refuted at runtime")
	dispatch := fs.String("dispatch", "inline", "analysis dispatch mode: inline (per access), deferred (batched ring drains), vectorized (batched + page-grouped kernels), parallel (page-sharded worker fan-out) or phased (split-phase hot-page banking; implies -epoch)")
	analysisWorkers := fs.Int("analysis-workers", 0, "with -dispatch parallel: analysis worker goroutines (<1 = 1; output is byte-identical at any value)")
	prov := fs.String("provider", "aikidovm", "per-thread protection provider: aikidovm, dos, dthreads (§7.1)")
	paging := fs.String("paging", "shadow", "AikidoVM paging mode: shadow, nested (§3.2.2)")
	swi := fs.String("switch", "hypercall", "context-switch interception: hypercall, segtrap, probe (§3.2.3)")
	threads := fs.Int("threads", 0, "worker threads (0 = benchmark default)")
	scale := fs.Float64("scale", 1.0, "workload size multiplier")
	workers := fs.Int("workers", runtime.NumCPU(), "runner pool size for -bench all (results are identical at any value)")
	findings := fs.Bool("findings", false, "print every detected race/warning/violation/flow")
	races := fs.Bool("races", false, "alias for -findings")
	list := fs.Bool("list", false, "list benchmarks and exit")
	listAn := fs.Bool("list-analyses", false, "list registered analyses and exit")
	chaos := fs.String("chaos", "", "fault-injection plan: [seed=N;]KIND:SEAM[@COUNT];... (kinds panic|error|stall, seams provider|guest|drain|worker|analysis|reconcile|static)")
	maxCycles := fs.Uint64("max-cycles", 0, "per-cell simulated-cycle budget (0 = unlimited); overrun is a typed cell error")
	cellDeadline := fs.Duration("cell-deadline", 0, "per-cell wall-clock budget (0 = unlimited); overrun is a typed cell error")
	keepGoing := fs.Bool("keep-going", false, "record failing cells and finish the sweep instead of aborting on the first error")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitClean
		}
		return exitBadFlags
	}
	printFindings := *findings || *races

	if *list {
		for _, n := range parsec.Names() {
			fmt.Println(n)
		}
		return exitClean
	}
	if *listAn {
		for _, line := range analysis.Catalog() {
			fmt.Println(line)
		}
		return exitClean
	}

	m, ok := map[string]core.Mode{
		"native":    core.ModeNative,
		"dbi":       core.ModeDBI,
		"fasttrack": core.ModeFastTrackFull,
		"aikido":    core.ModeAikidoFastTrack,
		"profile":   core.ModeAikidoProfile,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown mode %q\n", *mode)
		return exitBadFlags
	}
	pk, ok := map[string]provider.Kind{
		"aikidovm": provider.AikidoVM,
		"dos":      provider.DOS,
		"dthreads": provider.Dthreads,
	}[*prov]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown provider %q\n", *prov)
		return exitBadFlags
	}
	pg, ok := map[string]hypervisor.PagingMode{
		"shadow": hypervisor.ShadowPaging,
		"nested": hypervisor.NestedPaging,
	}[*paging]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown paging mode %q\n", *paging)
		return exitBadFlags
	}
	sw, ok := map[string]hypervisor.SwitchInterception{
		"hypercall": hypervisor.SwitchHypercall,
		"segtrap":   hypervisor.SwitchSegTrap,
		"probe":     hypervisor.SwitchProbe,
	}[*swi]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown switch mechanism %q\n", *swi)
		return exitBadFlags
	}
	plan, err := faultinject.ParsePlan(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		return exitBadFlags
	}

	cfg := core.DefaultConfig(m)
	cfg.Analyses = analysis.ParseList(*analyses)
	cfg.MaxFindings = *maxFindings
	dm, err := core.ParseDispatchMode(*dispatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		return exitBadFlags
	}
	cfg.Dispatch = dm
	cfg.AnalysisWorkers = *analysisWorkers
	cfg.Provider = pk
	cfg.Paging = pg
	cfg.Switch = sw
	cfg.Chaos = plan
	cfg.MaxCycles = *maxCycles
	if *epoch {
		cfg.Epoch = sharing.DefaultEpochPolicy()
	}
	cfg.Static = *static
	cfg.StaticVerify = *staticVerify

	size := func(b parsec.Benchmark) parsec.Benchmark {
		b = b.WithScale(*scale)
		if *threads > 0 {
			b = b.WithThreads(*threads)
		}
		return b
	}
	ropt := runner.Options{KeepGoing: *keepGoing, CellDeadline: *cellDeadline}

	if *bench == "all" {
		var specs []runner.Spec
		for _, b := range parsec.All() {
			b = size(b)
			specs = append(specs, runner.Spec{Label: b.Name, Workload: b.Spec, Config: cfg})
		}
		ropt.Workers = *workers
		rep, err := runner.Sweep(specs, ropt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
			return exitCellError
		}
		fmt.Printf("mode %s, analyses %v, scale %.2f, %d runner workers\n",
			m, cfg.Analyses, *scale, rep.Workers)
		fmt.Printf("%-15s %14s %14s %14s %14s %9s %9s\n",
			"benchmark", "cycles", "instructions", "mem refs", "instrumented", "shared%", "findings")
		total := 0
		for _, c := range rep.Cells {
			res := c.Res
			if res == nil {
				// Failed under -keep-going: its slot is empty; the
				// failure itself is listed below.
				continue
			}
			fmt.Printf("%-15s %14d %14d %14d %14d %8.2f%% %9d\n",
				c.Spec.Label, res.Cycles, res.Engine.Instructions, res.Engine.MemRefs,
				res.Engine.InstrumentedExecs, 100*res.SharedAccessFraction(), res.TotalFindings())
			total += res.TotalFindings()
		}
		t := rep.Totals
		fmt.Printf("%-15s %14d %14d %14d %14d %9s %9d\n",
			"total", t.Cycles, t.Instructions, t.MemRefs, t.InstrumentedExecs, "", total)
		if *static || *staticVerify {
			var pruned, seeded, trips uint64
			for _, c := range rep.Cells {
				if c.Res == nil {
					continue
				}
				if c.Res.StaticFallback != "" {
					fmt.Printf("static fallback  %s: %s\n", c.Spec.Label, c.Res.StaticFallback)
					continue
				}
				pruned += c.Res.SD.PCsStaticallyPruned
				seeded += c.Res.SD.PagesPreSeeded
				trips += c.Res.SD.StaticTripwires
			}
			fmt.Printf("static stats     %d PCs pruned (%d pages pre-seeded, %d tripwires) across cells\n",
				pruned, seeded, trips)
		}
		if printFindings {
			for _, c := range rep.Cells {
				if c.Res == nil {
					continue
				}
				for _, name := range c.Res.AnalysisNames() {
					for _, line := range c.Res.Findings[name].Strings() {
						fmt.Printf("%s: %s: %s\n", c.Spec.Label, name, line)
					}
				}
			}
		}
		return verdict(rep, total)
	}

	b, err := parsec.ByName(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		return exitBadFlags
	}
	b = size(b)
	ropt.Workers = 1
	rep, err := runner.Sweep([]runner.Spec{{Label: b.Name, Workload: b.Spec, Config: cfg}}, ropt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		return exitCellError
	}
	res := rep.Cells[0].Res
	if res == nil {
		// The only cell failed under -keep-going.
		return verdict(rep, 0)
	}

	fmt.Printf("benchmark        %s (%d worker threads, scale %.2f)\n", b.Name, b.Spec.Threads, *scale)
	fmt.Printf("mode             %s\n", res.Mode)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("instructions     %d\n", res.Engine.Instructions)
	fmt.Printf("memory refs      %d\n", res.Engine.MemRefs)
	fmt.Printf("instrumented     %d\n", res.Engine.InstrumentedExecs)
	fmt.Printf("context switches %d\n", res.GuestContextSwitches)
	if res.DeferredDrains > 0 || res.DeferredFallbacks > 0 {
		fmt.Printf("deferred drains  %d (%d access records banked, %d inline fallbacks)\n",
			res.DeferredDrains, res.DeferredRecords, res.DeferredFallbacks)
	}
	if res.DeferredGroups > 0 {
		fmt.Printf("vector groups    %d (%d records retired in-kernel, %d scalar fallbacks)\n",
			res.DeferredGroups, res.VectorCoalesced, res.VectorFallbacks)
	}
	if res.ParallelDrains > 0 {
		fmt.Printf("parallel drains  %d (%d page-straddle splits)\n",
			res.ParallelDrains, res.ParallelSplits)
	}
	if res.PhaseReconciles > 0 || res.PhaseBanked > 0 {
		fmt.Printf("phase reconciles %d (%d records banked, %d pages split, %d rejoined)\n",
			res.PhaseReconciles, res.PhaseBanked, res.SD.PagesSplit, res.SD.PagesJoined)
	}
	if m == core.ModeAikidoFastTrack || m == core.ModeAikidoProfile {
		fmt.Printf("provider         %s (paging %s, switch %s)\n", pk, pg, sw)
		fmt.Printf("shared accesses  %d (%.2f%% of memory refs)\n",
			res.SD.SharedPageAccesses, 100*res.SharedAccessFraction())
		fmt.Printf("pages private    %d\n", res.SD.PagesPrivate)
		fmt.Printf("pages shared     %d\n", res.SD.PagesShared)
		fmt.Printf("prot ops         %d (+%d ranged)\n", res.Prov.ProtOps, res.Prov.RangeOps)
		fmt.Printf("provider faults  %d\n", res.Prov.Faults)
		if pk == provider.AikidoVM {
			fmt.Printf("aikido faults    %d\n", res.HV.AikidoFaults)
			fmt.Printf("hypercalls       %d\n", res.HV.Hypercalls)
		}
		fmt.Printf("instrumented PCs %d\n", res.SD.InstrumentedPCs)
		if res.SD.RearmFailures > 0 {
			fmt.Printf("rearm failures   %d (affected pages stay instrumented)\n", res.SD.RearmFailures)
		}
		if *static || *staticVerify {
			if res.StaticFallback != "" {
				fmt.Printf("static fallback  %s\n", res.StaticFallback)
			} else {
				fmt.Printf("static stats     %d PCs pruned (%d pages pre-seeded, %d tripwires)\n",
					res.SD.PCsStaticallyPruned, res.SD.PagesPreSeeded, res.SD.StaticTripwires)
			}
		}
		if *epoch {
			fmt.Printf("epoch sweeps     %d (%d ticks)\n", res.SD.EpochSweeps, res.EpochTicks)
			fmt.Printf("pages demoted    %d private, %d unused\n",
				res.SD.PagesDemotedPrivate, res.SD.PagesDemotedUnused)
			fmt.Printf("pages reshared   %d\n", res.SD.PagesReshared)
			fmt.Printf("PCs uninstr'd    %d\n", res.SD.PCsUninstrumented)
		}
	}
	// The findings table is registry-driven: one block per selected
	// analysis, rendered through the uniform findings surface.
	total := 0
	for _, name := range res.AnalysisNames() {
		f := res.Findings[name]
		fmt.Printf("analysis         %s: %s\n", name, f.Summary())
		fmt.Printf("findings         %d\n", f.Len())
		total += f.Len()
		if printFindings {
			for _, line := range f.Strings() {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	return verdict(rep, total)
}

// verdict prints any recorded cell failures and maps the sweep outcome
// to the documented exit code: cell errors dominate findings dominate
// clean.
func verdict(rep *runner.Report, totalFindings int) int {
	for _, ce := range rep.Failed {
		fmt.Fprintf(os.Stderr, "aikido-run: failed cell %d (%s): %s: %v\n",
			ce.Index, ce.Label, ce.Kind, ce.Err)
	}
	switch {
	case len(rep.Failed) > 0:
		return exitCellError
	case totalFindings > 0:
		return exitFindings
	}
	return exitClean
}

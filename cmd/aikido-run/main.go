// Command aikido-run executes one PARSEC benchmark model — or, with
// -bench all, every model concurrently — under a chosen detector
// configuration and prints the run's statistics and race reports.
//
// Usage:
//
//	aikido-run [-bench NAME|all] [-mode native|dbi|fasttrack|aikido|profile]
//	           [-analysis fasttrack|lockset|sampled|atomicity|commgraph]
//	           [-provider aikidovm|dos|dthreads] [-paging shadow|nested]
//	           [-switch hypercall|segtrap|probe]
//	           [-threads N] [-scale F] [-workers N] [-races] [-list]
//
// All execution goes through the concurrent runner (internal/runner):
// -bench all shards the ten models across -workers pool workers, and the
// printed statistics are identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/hypervisor"
	"repro/internal/parsec"
	"repro/internal/provider"
	"repro/internal/runner"
)

func main() {
	bench := flag.String("bench", "fluidanimate", "benchmark name (see -list), or \"all\" to sweep every model")
	mode := flag.String("mode", "aikido", "native, dbi, fasttrack, aikido, profile")
	analysis := flag.String("analysis", "fasttrack", "fasttrack, lockset, sampled, atomicity, commgraph")
	prov := flag.String("provider", "aikidovm", "per-thread protection provider: aikidovm, dos, dthreads (§7.1)")
	paging := flag.String("paging", "shadow", "AikidoVM paging mode: shadow, nested (§3.2.2)")
	swi := flag.String("switch", "hypercall", "context-switch interception: hypercall, segtrap, probe (§3.2.3)")
	threads := flag.Int("threads", 0, "worker threads (0 = benchmark default)")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	workers := flag.Int("workers", runtime.NumCPU(), "runner pool size for -bench all (results are identical at any value)")
	races := flag.Bool("races", false, "print every detected race/violation")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, n := range parsec.Names() {
			fmt.Println(n)
		}
		return
	}

	m, ok := map[string]core.Mode{
		"native":    core.ModeNative,
		"dbi":       core.ModeDBI,
		"fasttrack": core.ModeFastTrackFull,
		"aikido":    core.ModeAikidoFastTrack,
		"profile":   core.ModeAikidoProfile,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	an, ok := map[string]core.AnalysisKind{
		"fasttrack": core.AnalysisFastTrack,
		"lockset":   core.AnalysisLockSet,
		"sampled":   core.AnalysisSampledFastTrack,
		"atomicity": core.AnalysisAtomicity,
		"commgraph": core.AnalysisCommGraph,
	}[*analysis]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown analysis %q\n", *analysis)
		os.Exit(2)
	}
	pk, ok := map[string]provider.Kind{
		"aikidovm": provider.AikidoVM,
		"dos":      provider.DOS,
		"dthreads": provider.Dthreads,
	}[*prov]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown provider %q\n", *prov)
		os.Exit(2)
	}
	pg, ok := map[string]hypervisor.PagingMode{
		"shadow": hypervisor.ShadowPaging,
		"nested": hypervisor.NestedPaging,
	}[*paging]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown paging mode %q\n", *paging)
		os.Exit(2)
	}
	sw, ok := map[string]hypervisor.SwitchInterception{
		"hypercall": hypervisor.SwitchHypercall,
		"segtrap":   hypervisor.SwitchSegTrap,
		"probe":     hypervisor.SwitchProbe,
	}[*swi]
	if !ok {
		fmt.Fprintf(os.Stderr, "aikido-run: unknown switch mechanism %q\n", *swi)
		os.Exit(2)
	}

	cfg := core.DefaultConfig(m)
	cfg.Analysis = an
	cfg.Provider = pk
	cfg.Paging = pg
	cfg.Switch = sw

	size := func(b parsec.Benchmark) parsec.Benchmark {
		b = b.WithScale(*scale)
		if *threads > 0 {
			b = b.WithThreads(*threads)
		}
		return b
	}

	if *bench == "all" {
		var specs []runner.Spec
		for _, b := range parsec.All() {
			b = size(b)
			specs = append(specs, runner.Spec{Label: b.Name, Workload: b.Spec, Config: cfg})
		}
		rep, err := runner.Sweep(specs, runner.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
			os.Exit(1)
		}
		// findings spans every analysis kind: FastTrack races, LockSet
		// warnings, atomicity violations.
		findings := func(res *core.Result) int {
			return len(res.Races) + len(res.Warnings) + len(res.Violations)
		}
		fmt.Printf("mode %s, scale %.2f, %d runner workers\n", m, *scale, rep.Workers)
		fmt.Printf("%-15s %14s %14s %14s %14s %9s %9s\n",
			"benchmark", "cycles", "instructions", "mem refs", "instrumented", "shared%", "findings")
		total := 0
		for _, c := range rep.Cells {
			res := c.Res
			fmt.Printf("%-15s %14d %14d %14d %14d %8.2f%% %9d\n",
				c.Spec.Label, res.Cycles, res.Engine.Instructions, res.Engine.MemRefs,
				res.Engine.InstrumentedExecs, 100*res.SharedAccessFraction(), findings(res))
			total += findings(res)
		}
		t := rep.Totals
		fmt.Printf("%-15s %14d %14d %14d %14d %9s %9d\n",
			"total", t.Cycles, t.Instructions, t.MemRefs, t.InstrumentedExecs, "", total)
		if *races {
			for _, c := range rep.Cells {
				for _, r := range c.Res.Races {
					fmt.Printf("%s: %v\n", c.Spec.Label, r)
				}
				for _, w := range c.Res.Warnings {
					fmt.Printf("%s: %v\n", c.Spec.Label, w)
				}
				for _, v := range c.Res.Violations {
					fmt.Printf("%s: %v\n", c.Spec.Label, v)
				}
			}
		}
		return
	}

	b, err := parsec.ByName(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		os.Exit(2)
	}
	b = size(b)
	rep, err := runner.Sweep([]runner.Spec{{Label: b.Name, Workload: b.Spec, Config: cfg}},
		runner.Options{Workers: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-run: %v\n", err)
		os.Exit(1)
	}
	res := rep.Cells[0].Res

	fmt.Printf("benchmark        %s (%d worker threads, scale %.2f)\n", b.Name, b.Spec.Threads, *scale)
	fmt.Printf("mode             %s\n", res.Mode)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("instructions     %d\n", res.Engine.Instructions)
	fmt.Printf("memory refs      %d\n", res.Engine.MemRefs)
	fmt.Printf("instrumented     %d\n", res.Engine.InstrumentedExecs)
	fmt.Printf("context switches %d\n", res.GuestContextSwitches)
	if m == core.ModeAikidoFastTrack || m == core.ModeAikidoProfile {
		fmt.Printf("provider         %s (paging %s, switch %s)\n", pk, pg, sw)
		fmt.Printf("shared accesses  %d (%.2f%% of memory refs)\n",
			res.SD.SharedPageAccesses, 100*res.SharedAccessFraction())
		fmt.Printf("pages private    %d\n", res.SD.PagesPrivate)
		fmt.Printf("pages shared     %d\n", res.SD.PagesShared)
		fmt.Printf("prot ops         %d (+%d ranged)\n", res.Prov.ProtOps, res.Prov.RangeOps)
		fmt.Printf("provider faults  %d\n", res.Prov.Faults)
		if pk == provider.AikidoVM {
			fmt.Printf("aikido faults    %d\n", res.HV.AikidoFaults)
			fmt.Printf("hypercalls       %d\n", res.HV.Hypercalls)
		}
		fmt.Printf("instrumented PCs %d\n", res.SD.InstrumentedPCs)
	}
	if an == core.AnalysisCommGraph && res.CG.Communications > 0 {
		fmt.Printf("communications   %d over %d shared variables\n",
			res.CG.Communications, res.CG.Variables)
		for i, e := range res.CommEdges {
			if i >= 8 {
				fmt.Printf("  … %d more edges\n", len(res.CommEdges)-8)
				break
			}
			fmt.Printf("  %v weight %d\n", e.Edge, e.Weight)
		}
	}
	if m == core.ModeAikidoFastTrack || m == core.ModeFastTrackFull {
		switch an {
		case core.AnalysisLockSet:
			fmt.Printf("analysis         lockset: reads=%d writes=%d refinements=%d\n",
				res.LS.Reads, res.LS.Writes, res.LS.Refinements)
			fmt.Printf("violations       %d\n", len(res.Warnings))
			if *races {
				for _, w := range res.Warnings {
					fmt.Printf("  %v\n", w)
				}
			}
		case core.AnalysisAtomicity:
			fmt.Printf("analysis         atomicity: reads=%d writes=%d regions=%d\n",
				res.Atom.Reads, res.Atom.Writes, res.Atom.Regions)
			fmt.Printf("violations       %d\n", len(res.Violations))
			if *races {
				for _, w := range res.Violations {
					fmt.Printf("  %v\n", w)
				}
			}
		default:
			fmt.Printf("analysis         reads=%d writes=%d same-epoch=%d slow=%d sync=%d\n",
				res.FT.Reads, res.FT.Writes, res.FT.SameEpoch, res.FT.SlowPath, res.FT.SyncOps)
			if an == core.AnalysisSampledFastTrack {
				fmt.Printf("sampling         %d of %d accesses (%.2f%%)\n",
					res.Sampling.Sampled, res.Sampling.Seen,
					100*float64(res.Sampling.Sampled)/float64(res.Sampling.Seen))
			}
			fmt.Printf("races            %d\n", len(res.Races))
			if *races {
				for _, r := range res.Races {
					fmt.Printf("  %v\n", r)
				}
			}
		}
	}
}

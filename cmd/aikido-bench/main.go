// Command aikido-bench regenerates the paper's evaluation — Figure 5,
// Figure 6, Table 1, Table 2 — plus the ablation studies (mirror pages,
// paging modes, context-switch interception, protection providers) and the
// extension experiments (detector comparison, thread scaling,
// Nondeterminator vs FastTrack, STM strong atomicity, CREW record/replay).
//
// Usage:
//
//	aikido-bench [-experiment all|fig5|fig6|table1|table2|ablation|paging|
//	              switch|providers|detectors|muxbench|epochs|deferred|vector|
//	              parallel|phase|static|scaling|nondet|stm|crew]
//	             [-scale F] [-threads N] [-workers N] [-json FILE]
//	             [-muxjson FILE] [-epochjson FILE] [-deferredjson FILE]
//	             [-vecjson FILE] [-paralleljson FILE] [-phasejson FILE]
//	             [-staticjson FILE]
//	             [-epoch] [-dispatch inline|deferred|vectorized|parallel|phased]
//	             [-analysis-workers N]
//	             [-analysis NAME[,NAME...]] [-deterministic]
//	aikido-bench -experiment chaos [-chaos PLAN] [-scale F] [-workers N]
//	aikido-bench -compare OLD.json,NEW.json [-max-regress-pct P]
//
// -analysis selects the analyses every analysis-bearing cell runs (registry
// names, multiplexed onto one pass per cell); CI diffs the -json report at
// "-analysis fasttrack" (and the "ft" alias) against the default to pin the
// single-analysis path byte-identical through the registry seam. The
// muxbench experiment (and -muxjson, the BENCH_<n>.json source) measures N
// sequential single-analysis Aikido passes against ONE multiplexed pass
// hosting the same N analyses.
//
// Every model×mode experiment matrix is sharded across -workers concurrent
// runner workers (default: all CPUs); results are identical at any worker
// count. The nondet, stm and crew extensions run their own engines
// (SP-bags, the STM, CREW record/replay) sequentially and ignore -workers.
//
// With -json, the Figure 5 workload matrix runs once per (model, mode) with
// wall-clock timing and a machine-readable report is written to FILE ("-"
// for stdout). Checked-in snapshots follow the BENCH_<n>.json convention —
// one per PR that claims a performance change — so the repository carries
// its own perf trajectory; take snapshots with -workers 1, since per-cell
// wall_ns is inflated by contention when cells run concurrently (see
// docs/benchmarking.md). -deterministic zeroes the report's wall_ns fields
// so the bytes depend only on simulated metrics; CI uses it to diff
// -workers 1 against -workers 8.
//
// -epoch enables epoch-based re-privatization (sharing.DefaultEpochPolicy)
// in every Aikido cell: CI's 3-way equivalence leg diffs an -epoch report
// against the baseline to pin that demotion never perturbs the PARSEC
// models. The epochs experiment (and -epochjson, the BENCH_4.json source)
// measures the demotion win on the phased/migratory workload suite, where
// it does fire.
//
// -dispatch selects the analysis dispatch mode for every analysis-bearing
// cell: inline clean calls per access (the default), deferred per-thread
// rings drained in batches at synchronization boundaries, vectorized —
// deferred plus page-grouped batch kernels that run-length coalesce
// same-state records — or parallel, which additionally fans the page
// groups of each drained batch out across -analysis-workers analysis
// worker goroutines (page % N sharding; sync events are full barriers and
// findings reconcile in canonical order). Under the default cost model
// all four are byte-identical at any worker count — CI's equivalence legs
// diff "-dispatch deferred", "-dispatch vectorized" and "-dispatch
// parallel -analysis-workers 1/4/8" reports against the inline baseline
// to pin exactly that. The deferred experiment (and -deferredjson, the
// BENCH_5.json source) measures the batching win under the explicit
// transition-cost model (stats.DispatchCosts); the vector experiment (and
// -vecjson, the BENCH_7.json source) measures what the vectorized kernels
// recover on top of BENCH_5's deferred-scalar cells; the parallel
// experiment (and -paralleljson, the BENCH_8.json source) measures what
// page-sharded fan-out at 2/4/8 workers recovers on top of BENCH_7's
// vectorized cells (per drain: a fixed fan-out/join cost plus a
// reconciliation term per active shard, against retiring the batch at
// the slowest shard instead of the sum of all shards); phased — inline
// delivery for joined pages plus Doppel-style split phases for hot ones
// (see docs/phases.md): pages the sharing detector classifies as
// many-writer-every-epoch bank their accesses in per-thread delta rings
// at PhaseBankRecord instead of paying the per-access clean call, and a
// reconciliation merge folds the deltas into canonical shadow state —
// in (seq, addr, kind) order, strictly before every phase flip, sync
// event or epoch sweep — so findings stay byte-identical to inline.
// Under the default cost model phased is byte-identical to the inline
// baseline too (banking is charge-free and delivery order-preserving) —
// CI's "-dispatch phased" equivalence legs diff exactly that. The phase
// experiment (and -phasejson, the BENCH_9.json source) measures the
// split-phase win on permanently-hot pages (falseshare, zipf-hot) under
// the transition-cost model, with every PARSEC model as guard rail.
//
// The static experiment (and -staticjson, the BENCH_10.json source)
// measures the static privacy pre-pass (internal/staticanalysis): the
// same Aikido FastTrack cell with pure dynamic classification vs the
// pre-pass pruning provably-private PCs and pre-seeding single-owner
// pages, over every PARSEC model (the guard rail) plus a
// startup-dominated private suite (the headline — the win amortizes over
// thread creation and first touches, not steady-state iterations). The
// experiment doubles as CI's static equivalence leg: it exits nonzero if
// any row's findings diverge between the two cells, a soundness tripwire
// fires, or the pass unexpectedly falls back.
//
// -experiment chaos is the fault-isolation acceptance harness and is NOT
// part of "all": it runs the chaos matrix (every Figure-5 model×mode cell
// plus the epoch suite's demoting workloads, the Zipf parallel cells and
// the hot phased cells) under the deterministic
// fault-injection plan given with -chaos ("[seed=N;]KIND:SEAM[@COUNT];…",
// see internal/faultinject), and exits nonzero if any containment
// contract breaks — an injected fault escaping as a process crash, a
// failure that is not a typed error, a report that differs between
// -workers N and -workers 1, or (with an empty plan) any byte of
// divergence from the chaos-free matrix. CI runs three seeded plans and
// asserts exit 0.
//
// -compare OLD,NEW is the CI bench-regression gate: both files must be
// BENCH-style snapshots of the same schema and scale, and the command
// exits nonzero when NEW's geomean cycle speedup is more than
// -max-regress-pct percent below OLD's.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment: all, fig5, fig6, table1, table2, ablation, paging, switch, providers, detectors, muxbench, epochs, deferred, vector, parallel, phase, static, scaling, nondet, stm, crew")
	scale := flag.Float64("scale", 1.0, "workload size multiplier (1.0 = simsmall-scaled default)")
	threads := flag.Int("threads", 0, "override worker threads (0 = benchmark default, 8)")
	workers := flag.Int("workers", runtime.NumCPU(), "runner pool size for the experiment sweep (results are identical at any value)")
	jsonOut := flag.String("json", "", "write a machine-readable bench report to this file (\"-\" = stdout) instead of running text experiments")
	muxOut := flag.String("muxjson", "", "write the mux-amortization report (BENCH_3.json snapshots) to this file (\"-\" = stdout)")
	epochOut := flag.String("epochjson", "", "write the epoch re-privatization report (BENCH_4.json snapshots) to this file (\"-\" = stdout)")
	deferredOut := flag.String("deferredjson", "", "write the deferred-dispatch amortization report (BENCH_5.json snapshots) to this file (\"-\" = stdout)")
	vecOut := flag.String("vecjson", "", "write the batch-vectorization report (BENCH_7.json snapshots) to this file (\"-\" = stdout)")
	parOut := flag.String("paralleljson", "", "write the parallel-analysis fan-out report (BENCH_8.json snapshots) to this file (\"-\" = stdout)")
	phaseOut := flag.String("phasejson", "", "write the split-phase hot-page report (BENCH_9.json snapshots) to this file (\"-\" = stdout)")
	staticOut := flag.String("staticjson", "", "write the static privacy pre-pass report (BENCH_10.json snapshots) to this file (\"-\" = stdout)")
	epoch := flag.Bool("epoch", false, "enable epoch-based re-privatization in every Aikido cell (CI diffs this against the baseline)")
	dispatch := flag.String("dispatch", "inline", "analysis dispatch mode for every analysis-bearing cell: inline, deferred, vectorized, parallel or phased (CI diffs every non-inline mode against the inline baseline)")
	analysisWorkers := flag.Int("analysis-workers", 0, "with -dispatch parallel: analysis worker goroutines per cell (<1 = 1; reports are byte-identical at any value)")
	det := flag.Bool("deterministic", false, "zero wall_ns in machine-readable reports so output bytes depend only on simulated metrics")
	analyses := flag.String("analysis", "", "comma-separated analyses for every analysis-bearing cell (registry names; empty = default FastTrack)")
	chaosPlan := flag.String("chaos", "", "with -experiment chaos: the fault-injection plan [seed=N;]KIND:SEAM[@COUNT];... (empty = idle-overhead identity check)")
	compare := flag.String("compare", "", "OLD.json,NEW.json: compare two BENCH snapshots of one schema and fail on regression (CI gate)")
	maxRegress := flag.Float64("max-regress-pct", 5, "with -compare, the allowed geomean-cycle-speedup regression in percent")
	flag.Parse()

	if *compare != "" {
		oldPath, newPath, err := experiments.ParseComparePair(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
			os.Exit(2)
		}
		summary, err := experiments.CompareSnapshots(oldPath, newPath, *maxRegress)
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	dm, err := core.ParseDispatchMode(*dispatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
		os.Exit(2)
	}
	o := experiments.Options{Scale: *scale, Threads: *threads, Workers: *workers,
		Deterministic: *det, Analyses: analysis.ParseList(*analyses), Epoch: *epoch,
		Dispatch: dm, AnalysisWorkers: *analysisWorkers}
	w := os.Stdout

	// The chaos harness replaces the text experiments entirely (and is
	// excluded from -experiment all): it sweeps its own matrix twice for
	// the determinism check and asserts its containment contracts,
	// exiting nonzero — after rendering the report — when any fails.
	if *exp == "chaos" {
		rep, err := experiments.ChaosSweep(o, *chaosPlan)
		if rep != nil {
			experiments.WriteChaos(w, rep)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-bench: chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}

	openOut := func(path string) *os.File {
		if path == "-" {
			return os.Stdout
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
			os.Exit(1)
		}
		return f
	}

	// -json, -muxjson, -epochjson, -deferredjson, -vecjson, -paralleljson,
	// -phasejson and -staticjson each replace the text experiments; given
	// together, every requested report is produced.
	if *jsonOut != "" || *muxOut != "" || *epochOut != "" || *deferredOut != "" ||
		*vecOut != "" || *parOut != "" || *phaseOut != "" || *staticOut != "" {
		if *jsonOut != "" {
			rep, err := experiments.BenchJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: json: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*jsonOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteBenchJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *muxOut != "" {
			rep, err := experiments.MuxJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: muxjson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*muxOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteMuxJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *epochOut != "" {
			rep, err := experiments.EpochJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: epochjson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*epochOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteEpochJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *deferredOut != "" {
			rep, err := experiments.DeferredJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: deferredjson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*deferredOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteDeferredJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *vecOut != "" {
			rep, err := experiments.VectorJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: vecjson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*vecOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteVectorJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *parOut != "" {
			rep, err := experiments.ParallelJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: paralleljson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*parOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteParallelJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *phaseOut != "" {
			rep, err := experiments.PhaseJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: phasejson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*phaseOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WritePhaseJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *staticOut != "" {
			rep, err := experiments.StaticJSON(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: staticjson: %v\n", err)
				os.Exit(1)
			}
			out := openOut(*staticOut)
			if out != os.Stdout {
				defer out.Close()
			}
			if err := experiments.WriteStaticJSON(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aikido-bench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "aikido-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	run("fig5", func() error {
		rows, err := experiments.Figure5(o)
		if err != nil {
			return err
		}
		experiments.WriteFigure5(w, rows)
		return nil
	})
	run("fig6", func() error {
		rows, err := experiments.Figure6(o)
		if err != nil {
			return err
		}
		experiments.WriteFigure6(w, rows)
		return nil
	})
	run("table1", func() error {
		cells, err := experiments.Table1(o)
		if err != nil {
			return err
		}
		experiments.WriteTable1(w, cells)
		return nil
	})
	run("table2", func() error {
		rows, red, err := experiments.Table2(o)
		if err != nil {
			return err
		}
		experiments.WriteTable2(w, rows, red)
		return nil
	})
	run("ablation", func() error {
		rows, err := experiments.Ablations(o)
		if err != nil {
			return err
		}
		experiments.WriteAblations(w, rows)
		return nil
	})
	run("paging", func() error {
		rows, err := experiments.AblationPaging(o)
		if err != nil {
			return err
		}
		experiments.WriteAblationPaging(w, rows)
		return nil
	})
	run("switch", func() error {
		rows, err := experiments.AblationSwitch(o)
		if err != nil {
			return err
		}
		experiments.WriteAblationSwitch(w, rows)
		return nil
	})
	run("providers", func() error {
		rows, err := experiments.AblationProviders(o)
		if err != nil {
			return err
		}
		experiments.WriteAblationProviders(w, rows)
		return nil
	})
	run("detectors", func() error {
		rows, err := experiments.ExtensionDetectors(o)
		if err != nil {
			return err
		}
		experiments.WriteExtensionDetectors(w, rows)
		return nil
	})
	run("muxbench", func() error {
		rows, err := experiments.MuxAmortization(o)
		if err != nil {
			return err
		}
		experiments.WriteMuxAmortization(w, rows)
		return nil
	})
	run("epochs", func() error {
		rows, err := experiments.Epochs(o)
		if err != nil {
			return err
		}
		experiments.WriteEpochs(w, rows)
		return nil
	})
	run("deferred", func() error {
		rows, err := experiments.DeferredAmortization(o)
		if err != nil {
			return err
		}
		experiments.WriteDeferredAmortization(w, rows)
		return nil
	})
	run("vector", func() error {
		rows, err := experiments.VectorAmortization(o)
		if err != nil {
			return err
		}
		experiments.WriteVectorAmortization(w, rows)
		return nil
	})
	run("parallel", func() error {
		rows, err := experiments.ParallelAmortization(o)
		if err != nil {
			return err
		}
		experiments.WriteParallelAmortization(w, rows)
		return nil
	})
	run("phase", func() error {
		rows, err := experiments.PhaseAmortization(o)
		if err != nil {
			return err
		}
		experiments.WritePhaseAmortization(w, rows)
		return nil
	})
	run("static", func() error {
		rows, err := experiments.StaticAmortization(o)
		if err != nil {
			return err
		}
		experiments.WriteStaticAmortization(w, rows)
		// The static experiment doubles as the CI equivalence leg: any
		// findings divergence, tripwire or unexpected fallback is a
		// soundness failure, not a performance result.
		for _, r := range rows {
			if !r.FindingsIdentical {
				return fmt.Errorf("%s: findings diverge between dynamic and static cells", r.Name)
			}
			if r.Tripwires > 0 {
				return fmt.Errorf("%s: %d soundness tripwires fired", r.Name, r.Tripwires)
			}
			if r.Fallback != "" {
				return fmt.Errorf("%s: static pass fell back: %s", r.Name, r.Fallback)
			}
		}
		return nil
	})
	run("scaling", func() error {
		pts, err := experiments.ExtensionScaling(o)
		if err != nil {
			return err
		}
		experiments.WriteExtensionScaling(w, pts)
		return nil
	})
	run("nondet", func() error {
		rows, err := experiments.ExtensionNondeterminator(o)
		if err != nil {
			return err
		}
		experiments.WriteExtensionNondeterminator(w, rows)
		return nil
	})
	run("stm", func() error {
		rows, err := experiments.ExtensionSTM(o)
		if err != nil {
			return err
		}
		experiments.WriteExtensionSTM(w, rows)
		return nil
	})
	run("crew", func() error {
		rows, err := experiments.ExtensionCREW(o)
		if err != nil {
			return err
		}
		experiments.WriteExtensionCREW(w, rows)
		return nil
	})
}
